#include "runtime/hop_hierarchical.hpp"

#include "core/check.hpp"
#include "obs/metrics.hpp"
#include "runtime/hop_arena.hpp"

namespace compactroute {

HierarchicalHopScheme::HierarchicalHopScheme(
    const HierarchicalLabeledScheme& scheme, HopTables tables)
    : scheme_(&scheme) {
  if (tables == HopTables::kArena) {
    arena_ = HopArena::build(scheme.hierarchy(), nullptr, &scheme, nullptr,
                             nullptr, nullptr);
  }
}

HierarchicalHopScheme::HierarchicalHopScheme(
    const HierarchicalLabeledScheme& scheme,
    std::shared_ptr<const HopArena> arena)
    : scheme_(&scheme), arena_(std::move(arena)) {
  CR_CHECK(arena_ && arena_->hier_present);
}

bool HierarchicalHopScheme::arena_step(NodeId at, HopHeader& header,
                                       NodeId* next) const {
  CR_OBS_HOT_COUNT("hop.arena.steps");
  const HopArena& a = *arena_;
  const NodeId dest = static_cast<NodeId>(header.dest);
  if (a.leaf_label[at] == dest) return true;
  *next = a.hier_ring_next(at, dest);
  a.prefetch_hier_rings(*next);
  return false;
}

bool HierarchicalHopScheme::step_inplace(NodeId at, HopHeader& header,
                                         NodeId* next) const {
  if (arena_) return arena_step(at, header, next);
  return HopScheme::step_inplace(at, header, next);
}

HopScheme::Decision HierarchicalHopScheme::step(NodeId at,
                                                const HopHeader& header) const {
  if (arena_) {
    Decision decision;
    decision.header = header;
    decision.deliver = arena_step(at, decision.header, &decision.next);
    return decision;
  }
  return reference_step(at, header);
}

HopScheme::Decision HierarchicalHopScheme::reference_step(
    NodeId at, const HopHeader& header) const {
  CR_OBS_HOT_COUNT("hop.hierarchical.steps");
  CR_OBS_HOT_COUNT("hop.ref.ring_scans");
  Decision decision;
  decision.header = header;
  if (scheme_->hierarchy().leaf_label(at) == header.dest) {
    decision.deliver = true;
    return decision;
  }
  // Minimal ring hit at this node; move one edge toward x = v(i).
  for (int level = 0;; ++level) {
    CR_CHECK(level <= scheme_->hierarchy().top_level());
    for (const auto& entry : scheme_->rings(at)[level]) {
      if (entry.range.contains(static_cast<NodeId>(header.dest))) {
        CR_CHECK(entry.x != at);
        decision.next = entry.next_hop;
        return decision;
      }
    }
  }
}

}  // namespace compactroute

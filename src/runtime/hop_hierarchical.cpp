#include "runtime/hop_hierarchical.hpp"

#include "core/check.hpp"
#include "obs/metrics.hpp"

namespace compactroute {

HopScheme::Decision HierarchicalHopScheme::step(NodeId at,
                                                const HopHeader& header) const {
  CR_OBS_HOT_COUNT("hop.hierarchical.steps");
  Decision decision;
  decision.header = header;
  if (scheme_->hierarchy().leaf_label(at) == header.dest) {
    decision.deliver = true;
    return decision;
  }
  // Minimal ring hit at this node; move one edge toward x = v(i).
  for (int level = 0;; ++level) {
    CR_CHECK(level <= scheme_->hierarchy().top_level());
    for (const auto& entry : scheme_->rings(at)[level]) {
      if (entry.range.contains(static_cast<NodeId>(header.dest))) {
        CR_CHECK(entry.x != at);
        decision.next = entry.next_hop;
        return decision;
      }
    }
  }
}

}  // namespace compactroute

#pragma once
//
// Batch query engine over a loaded (or fresh) scheme stack.
//
// This is the build-once/serve-heavy half of the compact-routing story: the
// hop schemes are pure step functions over per-node tables, so replaying a
// batch of route requests needs only the CSR graph (to certify that every
// forwarded hop is a real edge) and the scheme — no metric backend, no
// preprocessing. Requests shard across the core/parallel Executor in fixed
// chunks; each worker runs the hop loop with no allocation of its own (paths
// and traces are never materialized — the per-request outputs are a hop
// count and a running fingerprint).
//
// Fingerprints: each request folds its visited node sequence into a 64-bit
// FNV-style hash; the batch combines per-request fingerprints XOR-wise after
// mixing in the request index, so the total is independent of both worker
// count and scheduling order, and equal between a fresh build and a loaded
// snapshot exactly when every route taken is identical.
//
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/types.hpp"
#include "graph/csr.hpp"
#include "runtime/hop_scheme.hpp"

namespace compactroute {

struct ServeRequest {
  NodeId src = 0;
  std::uint64_t dest_key = 0;  // label (labeled schemes) or name (NI schemes)
};

struct ServeOptions {
  /// 0 means the execute_hops default budget of 64 n + 1024.
  std::size_t max_hops = 0;
  /// Record per-request wall-clock latency (steady_clock, microseconds).
  /// Costs two clock reads per request; disable for pure-throughput runs.
  bool collect_latencies = true;
  /// Feed the sharded telemetry pipeline from the serve loop: per-worker
  /// "serve.latency_us" / "serve.route_hops" log histograms and a flight-
  /// recorder event per route. Purely observational — route decisions,
  /// hop counts, and fingerprints are identical with it on or off (and in a
  /// CR_OBS_DISABLED build it is compiled out entirely).
  bool instrument = true;
  /// When > 0 and span collection is enabled (obs::SpanCollector), emit one
  /// "serve.request" span for every N-th request of the batch. 0 disables
  /// request spans.
  std::size_t span_sample_every = 0;
  /// Sort each worker's chunk by destination key before dispatch, so
  /// consecutive requests walk overlapping arena rows (warm slab lines).
  /// Output slots are per-request-index, so stats and fingerprints are
  /// unaffected by the dispatch order.
  bool sort_by_dest = true;
};

struct ServeStats {
  std::size_t requests = 0;
  std::size_t delivered = 0;
  std::size_t total_hops = 0;
  std::size_t workers = 0;
  double elapsed_s = 0;
  double routes_per_sec = 0;
  // Latency percentiles in microseconds (0 when collect_latencies is off).
  double p50_us = 0;
  double p90_us = 0;
  double p99_us = 0;
  double p999_us = 0;
  double max_us = 0;
  /// Order- and thread-count-independent digest of every route taken.
  std::uint64_t fingerprint = 0;
};

/// Deterministic request batch: `count` (src, dest) pairs with src != dest,
/// drawn from a seeded Prng; dest_key_of maps the destination node to the
/// scheme's key space (leaf label or original name).
std::vector<ServeRequest> make_requests(
    std::size_t n, std::size_t count, std::uint64_t seed,
    const std::function<std::uint64_t(NodeId)>& dest_key_of);

/// Replays the batch and aggregates throughput/latency/fingerprint. Throws
/// InvariantError if the scheme ever forwards to a non-neighbor or exceeds
/// the hop budget (the same contract execute_hops enforces).
ServeStats serve_batch(const CsrGraph& csr, const HopScheme& scheme,
                       const std::vector<ServeRequest>& requests,
                       const ServeOptions& options = {});

/// Fingerprint of one request's route (the serve_batch inner loop, exposed
/// so audits can compare individual routes); outputs the hop count.
std::uint64_t serve_one(const CsrGraph& csr, const HopScheme& scheme,
                        const ServeRequest& request, std::size_t max_hops,
                        std::size_t* hops, bool* delivered);

/// Registers the serving-surface metrics runtime/server bumps — the
/// serve.queue.{depth,enqueued,shed} queue counters and serve.epoch.swaps
/// (see Server::submit/pump/publish) — in the calling thread's shard, so
/// scrapes and the Prometheus exposition surface them at zero from process
/// start even before any request arrives. No-op under CR_OBS_DISABLED.
void preregister_serving_metrics();

}  // namespace compactroute

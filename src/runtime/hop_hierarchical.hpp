#pragma once
//
// Hop-by-hop adapter for the hierarchical labeled scheme: the simplest
// possible compact-routing FSM. The header carries nothing but the
// destination label; every step is "find the minimal ring hit, forward one
// edge toward it" — stateless greedy descent.
//
#include "labeled/hierarchical_labeled.hpp"
#include "runtime/hop_scheme.hpp"

namespace compactroute {

class HierarchicalHopScheme final : public HopScheme {
 public:
  explicit HierarchicalHopScheme(const HierarchicalLabeledScheme& scheme)
      : scheme_(&scheme) {}

  std::string name() const override { return "hop/labeled-hierarchical"; }

  HopHeader make_header(NodeId /*src*/, std::uint64_t dest_key) const override {
    HopHeader header;
    header.dest = dest_key;
    return header;
  }

  Decision step(NodeId at, const HopHeader& header) const override;

  /// Every hop is greedy ring descent toward the destination label.
  TracePhase phase_of(const HopHeader& /*header*/) const override {
    return TracePhase::kLabelLookup;
  }

 private:
  const HierarchicalLabeledScheme* scheme_;
};

}  // namespace compactroute

#pragma once
//
// Hop-by-hop adapter for the hierarchical labeled scheme: the simplest
// possible compact-routing FSM. The header carries nothing but the
// destination label; every step is "find the minimal ring hit, forward one
// edge toward it" — stateless greedy descent.
//
// By default the scheme compiles its rings into a private HopArena and steps
// against the flat slab (one branchless containment scan, next node's rows
// prefetched). HopTables::kReference keeps the original nested-vector walk —
// the golden suite proves both take byte-identical routes.
//
#include <memory>

#include "labeled/hierarchical_labeled.hpp"
#include "runtime/hop_scheme.hpp"

namespace compactroute {

class HierarchicalHopScheme final : public HopScheme {
 public:
  explicit HierarchicalHopScheme(const HierarchicalLabeledScheme& scheme,
                                 HopTables tables = HopTables::kArena);
  /// Steps against a shared prebuilt arena (must carry the hier slab).
  HierarchicalHopScheme(const HierarchicalLabeledScheme& scheme,
                        std::shared_ptr<const HopArena> arena);

  std::string name() const override { return "hop/labeled-hierarchical"; }

  HopHeader make_header(NodeId /*src*/, std::uint64_t dest_key) const override {
    HopHeader header;
    header.dest = dest_key;
    return header;
  }

  Decision step(NodeId at, const HopHeader& header) const override;
  bool step_inplace(NodeId at, HopHeader& header, NodeId* next) const override;

  /// Every hop is greedy ring descent toward the destination label.
  TracePhase phase_of(const HopHeader& /*header*/) const override {
    return TracePhase::kLabelLookup;
  }

 private:
  Decision reference_step(NodeId at, const HopHeader& header) const;
  bool arena_step(NodeId at, HopHeader& header, NodeId* next) const;

  const HierarchicalLabeledScheme* scheme_;
  std::shared_ptr<const HopArena> arena_;
};

}  // namespace compactroute

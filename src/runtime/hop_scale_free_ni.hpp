#pragma once
//
// Hop-by-hop adapter for the scale-free name-independent scheme — the full
// Theorem 1.1 stack (Algorithms 3 + 4) as a layered packet FSM.
//
// Layering: the outer machine carries the name-independent state and a
// *nested* header of the scale-free labeled scheme (Theorem 1.2). Every
// physical hop executes one step of the inner machine toward the current
// ride target; when the inner ride delivers, the outer machine advances:
// climb the zooming sequence, detour to the delegated packed-ball tree
// (Algorithm 4's "go to c"), descend/ascend the search tree, or take the
// final leg. Header sizes add: O(log n) outer + the inner scheme's header.
//
// Outer header fields:
//   dest        — destination original name
//   level / aux — zoom level i and anchor u(i)
//   extra       — root of the active search structure (anchor or ball center)
//   target      — search-tree cursor
//   tree_dfs    — the retrieved routing label l(v) (once found)
//   inner_phase — continuation after the current ride arrives
//   nested      — the inner ScaleFreeHopScheme header (ride in progress)
//   phase       — arena mode only: 1 while a ride is active (the reference
//                 machine signals the same thing by resetting `nested`; the
//                 arena keeps the nested header allocated and reuses it, so
//                 rides cost zero allocations)
//
// By default both machines step against a shared HopArena;
// HopTables::kReference keeps the original container walks. Routes are
// byte-identical either way (golden suite). Header metering is unaffected:
// every *emitted* hop happens mid-ride, where both modes carry the nested
// header.
//
#include <memory>

#include "labeled/scale_free_labeled.hpp"
#include "nameind/scale_free_nameind.hpp"
#include "runtime/hop_scale_free.hpp"
#include "runtime/hop_scheme.hpp"

namespace compactroute {

class ScaleFreeNameIndependentHopScheme final : public HopScheme {
 public:
  ScaleFreeNameIndependentHopScheme(const ScaleFreeNameIndependentScheme& scheme,
                                    const ScaleFreeLabeledScheme& underlying,
                                    HopTables tables = HopTables::kArena);
  /// Shared prebuilt arena (must carry the sf + sfni slabs). The inner
  /// labeled machine steps against the same arena.
  ScaleFreeNameIndependentHopScheme(const ScaleFreeNameIndependentScheme& scheme,
                                    const ScaleFreeLabeledScheme& underlying,
                                    std::shared_ptr<const HopArena> arena);

  std::string name() const override {
    return "hop/name-independent-scale-free";
  }

  HopHeader make_header(NodeId src, std::uint64_t dest_key) const override;
  Decision step(NodeId at, const HopHeader& header) const override;
  bool step_inplace(NodeId at, HopHeader& header, NodeId* next) const override;
  TracePhase phase_of(const HopHeader& header) const override;

 private:
  enum Continuation : std::uint8_t {
    kAtAnchor = 0,    // arrived at u(level): run Search(·, u(level), level)
    kAtRoot = 1,      // arrived at the search structure's root: descend
    kSearchNode = 2,  // arrived at the next search-tree node
    kSearchBack = 3,  // returning toward the search root
    kBackAtAnchor = 4,  // Algorithm 4 line 7: returned from c to u
    kDeliver = 5,     // final leg arrived
  };

  /// Begins a ride of the inner scheme toward `label` (reference mode:
  /// fresh nested header).
  void start_ride(HopHeader& header, NodeId at, NodeId label,
                  Continuation continuation) const;
  /// Arena mode: same transition, but the nested header is reset in place —
  /// field-for-field what inner_.make_header produces, no allocation.
  void arena_start_ride(HopHeader& header, NodeId label,
                        Continuation continuation) const;

  Decision reference_step(NodeId at, const HopHeader& header) const;
  bool arena_step(NodeId at, HopHeader& header, NodeId* next) const;

  const ScaleFreeNameIndependentScheme* scheme_;
  const ScaleFreeLabeledScheme* underlying_;
  std::shared_ptr<const HopArena> arena_;  // before inner_: it rides on this
  ScaleFreeHopScheme inner_;
};

}  // namespace compactroute

#pragma once
//
// Hop-by-hop adapter for the scale-free name-independent scheme — the full
// Theorem 1.1 stack (Algorithms 3 + 4) as a layered packet FSM.
//
// Layering: the outer machine carries the name-independent state and a
// *nested* header of the scale-free labeled scheme (Theorem 1.2). Every
// physical hop executes one step of the inner machine toward the current
// ride target; when the inner ride delivers, the outer machine advances:
// climb the zooming sequence, detour to the delegated packed-ball tree
// (Algorithm 4's "go to c"), descend/ascend the search tree, or take the
// final leg. Header sizes add: O(log n) outer + the inner scheme's header.
//
// Outer header fields:
//   dest        — destination original name
//   level / aux — zoom level i and anchor u(i)
//   extra       — root of the active search structure (anchor or ball center)
//   target      — search-tree cursor
//   tree_dfs    — the retrieved routing label l(v) (once found)
//   inner_phase — continuation after the current ride arrives
//   nested      — the inner ScaleFreeHopScheme header (ride in progress)
//
#include "labeled/scale_free_labeled.hpp"
#include "nameind/scale_free_nameind.hpp"
#include "runtime/hop_scale_free.hpp"
#include "runtime/hop_scheme.hpp"

namespace compactroute {

class ScaleFreeNameIndependentHopScheme final : public HopScheme {
 public:
  ScaleFreeNameIndependentHopScheme(const ScaleFreeNameIndependentScheme& scheme,
                                    const ScaleFreeLabeledScheme& underlying)
      : scheme_(&scheme), underlying_(&underlying), inner_(underlying) {}

  std::string name() const override {
    return "hop/name-independent-scale-free";
  }

  HopHeader make_header(NodeId src, std::uint64_t dest_key) const override;
  Decision step(NodeId at, const HopHeader& header) const override;
  TracePhase phase_of(const HopHeader& header) const override;

 private:
  enum Continuation : std::uint8_t {
    kAtAnchor = 0,    // arrived at u(level): run Search(·, u(level), level)
    kAtRoot = 1,      // arrived at the search structure's root: descend
    kSearchNode = 2,  // arrived at the next search-tree node
    kSearchBack = 3,  // returning toward the search root
    kBackAtAnchor = 4,  // Algorithm 4 line 7: returned from c to u
    kDeliver = 5,     // final leg arrived
  };

  /// Begins a ride of the inner scheme toward `label`.
  void start_ride(HopHeader& header, NodeId at, NodeId label,
                  Continuation continuation) const;

  const ScaleFreeNameIndependentScheme* scheme_;
  const ScaleFreeLabeledScheme* underlying_;
  ScaleFreeHopScheme inner_;
};

}  // namespace compactroute

#include "runtime/hop_scale_free_ni.hpp"

#include "core/check.hpp"
#include "obs/metrics.hpp"
#include "runtime/hop_arena.hpp"

namespace compactroute {

ScaleFreeNameIndependentHopScheme::ScaleFreeNameIndependentHopScheme(
    const ScaleFreeNameIndependentScheme& scheme,
    const ScaleFreeLabeledScheme& underlying, HopTables tables)
    : scheme_(&scheme),
      underlying_(&underlying),
      arena_(tables == HopTables::kArena
                 ? HopArena::build(underlying.hierarchy(), &scheme.naming(),
                                   nullptr, &underlying, nullptr, &scheme)
                 : nullptr),
      inner_(arena_ ? ScaleFreeHopScheme(underlying, arena_)
                    : ScaleFreeHopScheme(underlying, HopTables::kReference)) {}

ScaleFreeNameIndependentHopScheme::ScaleFreeNameIndependentHopScheme(
    const ScaleFreeNameIndependentScheme& scheme,
    const ScaleFreeLabeledScheme& underlying,
    std::shared_ptr<const HopArena> arena)
    : scheme_(&scheme),
      underlying_(&underlying),
      arena_(std::move(arena)),
      inner_(underlying, arena_) {
  CR_CHECK(arena_ && arena_->sf_present && arena_->sfni_present);
}

HopHeader ScaleFreeNameIndependentHopScheme::make_header(
    NodeId src, std::uint64_t dest_key) const {
  HopHeader header;
  header.dest = dest_key;
  header.level = 0;
  header.aux = src;  // u(0)
  header.inner_phase = kAtAnchor;
  return header;
}

void ScaleFreeNameIndependentHopScheme::start_ride(HopHeader& header, NodeId at,
                                                   NodeId label,
                                                   Continuation continuation) const {
  (void)at;
  header.inner_phase = continuation;
  header.nested = std::make_unique<HopHeader>(inner_.make_header(at, label));
}

void ScaleFreeNameIndependentHopScheme::arena_start_ride(
    HopHeader& header, NodeId label, Continuation continuation) const {
  header.inner_phase = continuation;
  if (!header.nested) header.nested = std::make_unique<HopHeader>();
  // Reset field-for-field to what inner_.make_header(·, label) returns.
  HopHeader& inner = *header.nested;
  inner.dest = label;
  inner.phase = ScaleFreeHopScheme::kWalk;
  inner.level = ScaleFreeHopScheme::kNoPrevLevel;
  inner.exponent = 0;
  inner.target = kInvalidNode;
  inner.aux = kInvalidNode;
  inner.inner = 0;
  inner.inner_phase = 0;
  inner.tree_dfs = 0;
  inner.light.clear();
  inner.extra = kInvalidNode;
  header.phase = 1;  // ride active
}

TracePhase ScaleFreeNameIndependentHopScheme::phase_of(
    const HopHeader& header) const {
  switch (static_cast<Continuation>(header.inner_phase)) {
    case kAtAnchor:
    case kAtRoot:
    case kBackAtAnchor:
      return TracePhase::kHandoff;  // anchor climbs and ball-tree detours
    case kSearchNode:
    case kSearchBack:
      return TracePhase::kNetSearch;
    case kDeliver:
      return TracePhase::kLabelLookup;  // final leg toward the found label
  }
  return TracePhase::kForward;
}

bool ScaleFreeNameIndependentHopScheme::step_inplace(NodeId at,
                                                     HopHeader& header,
                                                     NodeId* next) const {
  if (arena_) return arena_step(at, header, next);
  return HopScheme::step_inplace(at, header, next);
}

HopScheme::Decision ScaleFreeNameIndependentHopScheme::step(
    NodeId at, const HopHeader& header) const {
  if (arena_) {
    Decision decision;
    decision.header = header;
    decision.deliver = arena_step(at, decision.header, &decision.next);
    return decision;
  }
  return reference_step(at, header);
}

bool ScaleFreeNameIndependentHopScheme::arena_step(NodeId at, HopHeader& h,
                                                   NodeId* next) const {
  CR_OBS_HOT_COUNT("hop.arena.steps");
  const HopArena& a = *arena_;
  const std::size_t n = a.n;

  const int settle_budget = 8 * (a.top_level + 4) + 64;
  for (int guard = 0; guard < settle_budget; ++guard) {
    // A ride of the inner labeled machine is in progress.
    if (h.phase == 1) {
      if (a.leaf_label[at] == static_cast<NodeId>(h.nested->dest)) {
        h.phase = 0;  // arrived; fall through to the continuation
      } else {
        const bool delivered = inner_.step_inplace(at, *h.nested, next);
        CR_CHECK_MSG(!delivered, "arrival is checked before stepping");
        return false;
      }
    }

    switch (static_cast<Continuation>(h.inner_phase)) {
      case kDeliver: {
        CR_CHECK(a.name_of[at] == h.dest);
        return true;
      }

      case kAtAnchor: {
        if (a.name_of[at] == h.dest) return true;
        const std::size_t slot = static_cast<std::size_t>(h.level) * n + h.aux;
        const NodeId root = a.sfni_root[slot];
        CR_CHECK(root != kInvalidNode);
        h.extra = root;
        // Algorithm 4: "go to c from u" when the level is delegated.
        arena_start_ride(h, a.leaf_label[root], kAtRoot);
        break;
      }

      case kAtRoot: {
        h.target = at;  // the search cursor starts at the root
        h.inner_phase = kSearchNode;
        break;
      }

      case kSearchNode: {
        const std::int32_t t =
            a.sfni_tree_of[static_cast<std::size_t>(h.level) * n + h.aux];
        CR_CHECK(t >= 0);
        const std::uint32_t row = a.trees.locate(t, at);
        const std::uint32_t child = a.trees.child_containing(row, h.dest);
        if (child != HopArena::TreeBank::npos) {
          const NodeId next_node = a.trees.child_global[child];
          h.target = next_node;
          arena_start_ride(h, a.leaf_label[next_node], kSearchNode);
          break;
        }
        std::uint64_t found_label = 0;
        if (a.trees.holds(row, h.dest, &found_label)) {
          h.tree_dfs = static_cast<NodeId>(found_label);
          h.exponent = 1;
        } else {
          h.exponent = 0;
        }
        const NodeId parent = a.trees.parent_global[row];
        const NodeId up = parent == kInvalidNode ? at : parent;
        h.target = up;
        arena_start_ride(h, a.leaf_label[up], kSearchBack);
        break;
      }

      case kSearchBack: {
        if (at != h.extra) {
          const std::int32_t t =
              a.sfni_tree_of[static_cast<std::size_t>(h.level) * n + h.aux];
          CR_CHECK(t >= 0);
          const std::uint32_t row = a.trees.locate(t, at);
          const NodeId up = a.trees.parent_global[row];
          CR_CHECK(up != kInvalidNode);
          h.target = up;
          arena_start_ride(h, a.leaf_label[up], kSearchBack);
          break;
        }
        // At the structure root: go back from c to u (Algorithm 4 line 7).
        arena_start_ride(h, a.leaf_label[h.aux], kBackAtAnchor);
        break;
      }

      case kBackAtAnchor: {
        if (h.exponent == 1) {
          h.inner = h.tree_dfs;
          arena_start_ride(h, h.tree_dfs, kDeliver);
          break;
        }
        CR_CHECK_MSG(h.level < a.top_level,
                     "the top search ball covers the whole graph");
        const NodeId up =
            a.net_parent[static_cast<std::size_t>(h.level) * n + at];
        h.level = static_cast<std::int16_t>(h.level + 1);
        h.aux = up;
        arena_start_ride(h, a.leaf_label[up], kAtAnchor);
        break;
      }
    }
  }
  CR_CHECK_MSG(false, "phase machine did not settle");
  return false;
}

HopScheme::Decision ScaleFreeNameIndependentHopScheme::reference_step(
    NodeId at, const HopHeader& in) const {
  CR_OBS_HOT_COUNT("hop.scale_free_ni.steps");
  const NetHierarchy& hierarchy = scheme_->hierarchy();
  Decision decision;
  decision.header = in;
  HopHeader& h = decision.header;

  const int settle_budget = 8 * (hierarchy.top_level() + 4) + 64;
  for (int guard = 0; guard < settle_budget; ++guard) {
    // A ride of the inner labeled machine is in progress.
    if (h.nested) {
      if (hierarchy.leaf_label(at) == static_cast<NodeId>(h.nested->dest)) {
        h.nested.reset();  // arrived; fall through to the continuation
      } else {
        Decision inner_decision = inner_.step(at, *h.nested);
        CR_CHECK_MSG(!inner_decision.deliver, "arrival is checked before stepping");
        *h.nested = std::move(inner_decision.header);
        decision.next = inner_decision.next;
        return decision;
      }
    }

    switch (static_cast<Continuation>(h.inner_phase)) {
      case kDeliver: {
        CR_CHECK(scheme_->naming().name_of(at) == h.dest);
        decision.deliver = true;
        return decision;
      }

      case kAtAnchor: {
        if (scheme_->naming().name_of(at) == h.dest) {
          decision.deliver = true;
          return decision;
        }
        NodeId root = kInvalidNode;
        scheme_->search_structure(h.level, h.aux, &root);
        h.extra = root;
        // Algorithm 4: "go to c from u" when the level is delegated.
        start_ride(h, at, underlying_->label(root), kAtRoot);
        break;
      }

      case kAtRoot: {
        h.target = at;  // the search cursor starts at the root
        h.inner_phase = kSearchNode;
        break;
      }

      case kSearchNode: {
        CR_OBS_HOT_COUNT("hop.ref.tree_reads");
        const SearchTree& tree =
            scheme_->search_structure(h.level, h.aux, nullptr);
        const int local = tree.tree().local_id(at);
        CR_CHECK(local >= 0);
        const int child = tree.child_containing(local, h.dest);
        if (child >= 0) {
          const NodeId next_node = tree.tree().global_id(child);
          h.target = next_node;
          start_ride(h, at, underlying_->label(next_node), kSearchNode);
          break;
        }
        SearchTree::Data found_label = 0;
        if (tree.holds(local, h.dest, &found_label)) {
          h.tree_dfs = static_cast<NodeId>(found_label);
          h.exponent = 1;
        } else {
          h.exponent = 0;
        }
        const int parent = tree.tree().parent(local);
        const NodeId up = parent < 0 ? at : tree.tree().global_id(parent);
        h.target = up;
        start_ride(h, at, underlying_->label(up), kSearchBack);
        break;
      }

      case kSearchBack: {
        if (at != h.extra) {
          CR_OBS_HOT_COUNT("hop.ref.tree_reads");
          const SearchTree& tree =
              scheme_->search_structure(h.level, h.aux, nullptr);
          const int local = tree.tree().local_id(at);
          CR_CHECK(local >= 0);
          const int parent = tree.tree().parent(local);
          CR_CHECK(parent >= 0);
          const NodeId up = tree.tree().global_id(parent);
          h.target = up;
          start_ride(h, at, underlying_->label(up), kSearchBack);
          break;
        }
        // At the structure root: go back from c to u (Algorithm 4 line 7).
        start_ride(h, at, underlying_->label(h.aux), kBackAtAnchor);
        break;
      }

      case kBackAtAnchor: {
        if (h.exponent == 1) {
          h.inner = h.tree_dfs;
          start_ride(h, at, h.tree_dfs, kDeliver);
          break;
        }
        CR_CHECK_MSG(h.level < hierarchy.top_level(),
                     "the top search ball covers the whole graph");
        const NodeId up = hierarchy.netting_parent(h.level, at);
        h.level = static_cast<std::int16_t>(h.level + 1);
        h.aux = up;
        start_ride(h, at, underlying_->label(up), kAtAnchor);
        break;
      }
    }
  }
  CR_CHECK_MSG(false, "phase machine did not settle");
  return decision;
}

}  // namespace compactroute

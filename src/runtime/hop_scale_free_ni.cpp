#include "runtime/hop_scale_free_ni.hpp"

#include "core/check.hpp"
#include "obs/metrics.hpp"

namespace compactroute {

HopHeader ScaleFreeNameIndependentHopScheme::make_header(
    NodeId src, std::uint64_t dest_key) const {
  HopHeader header;
  header.dest = dest_key;
  header.level = 0;
  header.aux = src;  // u(0)
  header.inner_phase = kAtAnchor;
  return header;
}

void ScaleFreeNameIndependentHopScheme::start_ride(HopHeader& header, NodeId at,
                                                   NodeId label,
                                                   Continuation continuation) const {
  (void)at;
  header.inner_phase = continuation;
  header.nested = std::make_unique<HopHeader>(inner_.make_header(at, label));
}

TracePhase ScaleFreeNameIndependentHopScheme::phase_of(
    const HopHeader& header) const {
  switch (static_cast<Continuation>(header.inner_phase)) {
    case kAtAnchor:
    case kAtRoot:
    case kBackAtAnchor:
      return TracePhase::kHandoff;  // anchor climbs and ball-tree detours
    case kSearchNode:
    case kSearchBack:
      return TracePhase::kNetSearch;
    case kDeliver:
      return TracePhase::kLabelLookup;  // final leg toward the found label
  }
  return TracePhase::kForward;
}

HopScheme::Decision ScaleFreeNameIndependentHopScheme::step(
    NodeId at, const HopHeader& in) const {
  CR_OBS_HOT_COUNT("hop.scale_free_ni.steps");
  const NetHierarchy& hierarchy = scheme_->hierarchy();
  Decision decision;
  decision.header = in;
  HopHeader& h = decision.header;

  const int settle_budget = 8 * (hierarchy.top_level() + 4) + 64;
  for (int guard = 0; guard < settle_budget; ++guard) {
    // A ride of the inner labeled machine is in progress.
    if (h.nested) {
      if (hierarchy.leaf_label(at) == static_cast<NodeId>(h.nested->dest)) {
        h.nested.reset();  // arrived; fall through to the continuation
      } else {
        Decision inner_decision = inner_.step(at, *h.nested);
        CR_CHECK_MSG(!inner_decision.deliver, "arrival is checked before stepping");
        *h.nested = std::move(inner_decision.header);
        decision.next = inner_decision.next;
        return decision;
      }
    }

    switch (static_cast<Continuation>(h.inner_phase)) {
      case kDeliver: {
        CR_CHECK(scheme_->naming().name_of(at) == h.dest);
        decision.deliver = true;
        return decision;
      }

      case kAtAnchor: {
        if (scheme_->naming().name_of(at) == h.dest) {
          decision.deliver = true;
          return decision;
        }
        NodeId root = kInvalidNode;
        scheme_->search_structure(h.level, h.aux, &root);
        h.extra = root;
        // Algorithm 4: "go to c from u" when the level is delegated.
        start_ride(h, at, underlying_->label(root), kAtRoot);
        break;
      }

      case kAtRoot: {
        h.target = at;  // the search cursor starts at the root
        h.inner_phase = kSearchNode;
        break;
      }

      case kSearchNode: {
        const SearchTree& tree =
            scheme_->search_structure(h.level, h.aux, nullptr);
        const int local = tree.tree().local_id(at);
        CR_CHECK(local >= 0);
        const int child = tree.child_containing(local, h.dest);
        if (child >= 0) {
          const NodeId next_node = tree.tree().global_id(child);
          h.target = next_node;
          start_ride(h, at, underlying_->label(next_node), kSearchNode);
          break;
        }
        SearchTree::Data found_label = 0;
        if (tree.holds(local, h.dest, &found_label)) {
          h.tree_dfs = static_cast<NodeId>(found_label);
          h.exponent = 1;
        } else {
          h.exponent = 0;
        }
        const int parent = tree.tree().parent(local);
        const NodeId up = parent < 0 ? at : tree.tree().global_id(parent);
        h.target = up;
        start_ride(h, at, underlying_->label(up), kSearchBack);
        break;
      }

      case kSearchBack: {
        if (at != h.extra) {
          const SearchTree& tree =
              scheme_->search_structure(h.level, h.aux, nullptr);
          const int local = tree.tree().local_id(at);
          CR_CHECK(local >= 0);
          const int parent = tree.tree().parent(local);
          CR_CHECK(parent >= 0);
          const NodeId up = tree.tree().global_id(parent);
          h.target = up;
          start_ride(h, at, underlying_->label(up), kSearchBack);
          break;
        }
        // At the structure root: go back from c to u (Algorithm 4 line 7).
        start_ride(h, at, underlying_->label(h.aux), kBackAtAnchor);
        break;
      }

      case kBackAtAnchor: {
        if (h.exponent == 1) {
          h.inner = h.tree_dfs;
          start_ride(h, at, h.tree_dfs, kDeliver);
          break;
        }
        CR_CHECK_MSG(h.level < hierarchy.top_level(),
                     "the top search ball covers the whole graph");
        const NodeId up = hierarchy.netting_parent(h.level, at);
        h.level = static_cast<std::int16_t>(h.level + 1);
        h.aux = up;
        start_ride(h, at, underlying_->label(up), kAtAnchor);
        break;
      }
    }
  }
  CR_CHECK_MSG(false, "phase machine did not settle");
  return decision;
}

}  // namespace compactroute

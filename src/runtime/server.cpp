#include "runtime/server.hpp"

#include <chrono>
#include <utility>

#include "core/check.hpp"
#include "core/parallel.hpp"
#include "core/prng.hpp"
#include "nets/rnet.hpp"
#include "obs/metrics.hpp"
#include "routing/naming.hpp"
#include "runtime/hop_hierarchical.hpp"
#include "runtime/hop_scale_free.hpp"
#include "runtime/hop_scale_free_ni.hpp"
#include "runtime/hop_simple_ni.hpp"
#include "runtime/serve.hpp"

namespace compactroute {

namespace {

// serve_batch's request-index mixer (splitmix64 finalizer) — same constants,
// so delivered_digest over a full un-shed batch equals the batch fingerprint.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;

/// Seed of the fixed per-epoch self-audit batch. The batch is a function of
/// (seed, scheme, n) only, so the same snapshot loaded twice — or audited at
/// load time and again mid-flip — serves identical requests.
constexpr std::uint64_t kSelfAuditSeed = 0x5e1fa0d1;
constexpr std::size_t kSelfAuditRequests = 32;

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::atomic<std::size_t> g_epochs_alive{0};

/// Pin-for-scope guard: exceptions thrown out of a serve must not leak the
/// grace count, or the epoch would never retire.
class EpochPin {
 public:
  explicit EpochPin(ServerEpoch& epoch) : epoch_(epoch) { epoch_.pin(); }
  ~EpochPin() { epoch_.unpin(); }
  EpochPin(const EpochPin&) = delete;
  EpochPin& operator=(const EpochPin&) = delete;

 private:
  ServerEpoch& epoch_;
};

}  // namespace

const char* serve_scheme_name(ServeScheme scheme) {
  switch (scheme) {
    case ServeScheme::kHierarchical: return "labeled-hierarchical";
    case ServeScheme::kScaleFree: return "labeled-scale-free";
    case ServeScheme::kSimpleNi: return "ni-simple";
    case ServeScheme::kScaleFreeNi: return "ni-scale-free";
  }
  return "unknown";
}

// ---------------------------------------------------------------- ServerEpoch

std::shared_ptr<ServerEpoch> ServerEpoch::load(const std::string& path,
                                               bool use_mmap,
                                               std::uint64_t id) {
  using Clock = std::chrono::steady_clock;
  auto epoch = std::shared_ptr<ServerEpoch>(new ServerEpoch());
  epoch->id_ = id;

  const auto t0 = Clock::now();
  if (use_mmap) {
    epoch->mapping_.emplace(path);
    epoch->load_info_.file_bytes = epoch->mapping_->size();
    epoch->stack_ = epoch->mapping_->decode();
  } else {
    const std::vector<std::uint8_t> bytes = read_snapshot_file(path);
    epoch->load_info_.file_bytes = bytes.size();
    epoch->stack_ = decode_snapshot(bytes);
  }
  const auto t1 = Clock::now();
  epoch->load_info_.used_mmap = use_mmap;
  epoch->load_info_.load_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();

  epoch->compile();
  return epoch;
}

std::shared_ptr<ServerEpoch> ServerEpoch::adopt(SnapshotStack stack,
                                                std::uint64_t id) {
  auto epoch = std::shared_ptr<ServerEpoch>(new ServerEpoch());
  epoch->id_ = id;
  epoch->stack_ = std::move(stack);
  epoch->compile();
  return epoch;
}

void ServerEpoch::compile() {
  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();
  arena_ = stack_.build_arena();
  if (stack_.hier) {
    hier_ = std::make_unique<HierarchicalHopScheme>(*stack_.hier, arena_);
  }
  if (stack_.sf) {
    sf_ = std::make_unique<ScaleFreeHopScheme>(*stack_.sf, arena_);
  }
  if (stack_.simple) {
    simple_ = std::make_unique<SimpleNameIndependentHopScheme>(
        *stack_.simple, *stack_.hier, arena_);
  }
  if (stack_.sfni) {
    sfni_ = std::make_unique<ScaleFreeNameIndependentHopScheme>(
        *stack_.sfni, *stack_.sf, arena_);
  }
  load_info_.arena_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  self_fingerprint_ = compute_self_fingerprint();
  g_epochs_alive.fetch_add(1, std::memory_order_relaxed);
  counted_alive_ = true;
}

ServerEpoch::~ServerEpoch() {
  // The grace invariant: destruction (and with it the munmap of mapping_)
  // must only happen once no request holds a pin. shared_ptr ownership makes
  // premature destruction a bug in the pin protocol, not a race we tolerate.
  CR_CHECK_MSG(in_flight_.load(std::memory_order_acquire) == 0,
               "epoch destroyed with requests in flight");
  if (counted_alive_) g_epochs_alive.fetch_sub(1, std::memory_order_relaxed);
}

std::size_t ServerEpoch::alive() {
  return g_epochs_alive.load(std::memory_order_relaxed);
}

bool ServerEpoch::has(ServeScheme scheme) const {
  switch (scheme) {
    case ServeScheme::kHierarchical: return hier_ != nullptr;
    case ServeScheme::kScaleFree: return sf_ != nullptr;
    case ServeScheme::kSimpleNi: return simple_ != nullptr;
    case ServeScheme::kScaleFreeNi: return sfni_ != nullptr;
  }
  return false;
}

std::uint64_t ServerEpoch::dest_key(ServeScheme scheme, NodeId dest) const {
  CR_CHECK(dest < stack_.n);
  switch (scheme) {
    case ServeScheme::kHierarchical:
    case ServeScheme::kScaleFree:
      return std::uint64_t{stack_.hierarchy->leaf_label(dest)};
    case ServeScheme::kSimpleNi:
    case ServeScheme::kScaleFreeNi:
      return stack_.naming->name_of(dest);
  }
  CR_CHECK_MSG(false, "unknown serve scheme");
  return 0;
}

std::uint64_t ServerEpoch::serve(const ServerRequest& request,
                                 std::size_t max_hops,
                                 std::size_t* hops) const {
  CR_CHECK_MSG(has(request.scheme), "request for a scheme this epoch lacks");
  const HopScheme* scheme = nullptr;
  switch (request.scheme) {
    case ServeScheme::kHierarchical: scheme = hier_.get(); break;
    case ServeScheme::kScaleFree: scheme = sf_.get(); break;
    case ServeScheme::kSimpleNi: scheme = simple_.get(); break;
    case ServeScheme::kScaleFreeNi: scheme = sfni_.get(); break;
  }
  const std::size_t budget =
      max_hops != 0 ? max_hops : 64 * stack_.n + 1024;
  ServeRequest one;
  one.src = request.src;
  one.dest_key = dest_key(request.scheme, request.dest);
  bool delivered = false;
  const std::uint64_t fp =
      serve_one(stack_.csr, *scheme, one, budget, hops, &delivered);
  CR_CHECK(delivered);
  return fp;
}

std::uint64_t ServerEpoch::compute_self_fingerprint() const {
  // A deterministic mixed-scheme batch over this epoch's own tables, served
  // sequentially (publish() runs this mid-flip; keeping it off the Executor
  // avoids contending with a concurrent pump's parallel region).
  std::uint64_t digest = 0;
  std::size_t k = 0;
  for (std::size_t s = 0; s < kNumServeSchemes; ++s) {
    const ServeScheme scheme = static_cast<ServeScheme>(s);
    if (!has(scheme)) continue;
    Prng prng = Prng::split(kSelfAuditSeed, s);
    for (std::size_t i = 0; i < kSelfAuditRequests; ++i, ++k) {
      ServerRequest request;
      request.scheme = scheme;
      request.src = static_cast<NodeId>(prng.next_below(stack_.n));
      NodeId dest = static_cast<NodeId>(prng.next_below(stack_.n - 1));
      if (dest >= request.src) ++dest;
      request.dest = dest;
      const std::uint64_t fp = serve(request, 0, nullptr);
      digest ^= mix64(fp + kGolden * (k + 1));
    }
  }
  return digest;
}

// --------------------------------------------------------------------- Server

Server::Server(const ServerOptions& options) : options_(options) {
  CR_CHECK_MSG(options_.queue_depth > 0, "queue depth must be positive");
  const std::size_t count =
      options_.shards != 0 ? options_.shards : Executor::global().workers();
  shards_.reserve(count);
  for (std::size_t s = 0; s < count; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->ring.reserve(options_.queue_depth);
    shards_.push_back(std::move(shard));
  }
}

Server::~Server() { stop(); }

std::shared_ptr<ServerEpoch> Server::publish(
    std::shared_ptr<ServerEpoch> epoch) {
  CR_CHECK_MSG(epoch != nullptr, "cannot publish a null epoch");
  // Audit the incoming stack before any request can route on it, and the
  // outgoing one after its final requests were issued: both must still serve
  // their load-time fingerprints, or tables were torn somewhere.
  CR_CHECK_MSG(epoch->audit(), "incoming epoch failed its serve audit");
  std::shared_ptr<ServerEpoch> previous;
  {
    std::lock_guard<std::mutex> lock(epoch_mu_);
    previous = std::move(epoch_);
    epoch_ = std::move(epoch);
  }
  if (previous) {
    CR_CHECK_MSG(previous->audit(), "outgoing epoch failed its serve audit");
  }
  swaps_.fetch_add(1, std::memory_order_relaxed);
  CR_OBS_COUNT("serve.epoch.swaps");
  return previous;
}

std::shared_ptr<ServerEpoch> Server::current() const {
  std::lock_guard<std::mutex> lock(epoch_mu_);
  return epoch_;
}

bool Server::submit(const ServerRequest& request, std::uint64_t id) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = *shards_[id % shards_.size()];
  {
    std::unique_lock<std::mutex> lock(shard.mu);
    for (;;) {
      if (stopped_.load(std::memory_order_acquire)) break;
      if (shard.ring.size() < options_.queue_depth) {
        Entry entry;
        entry.request = request;
        entry.id = id;
        entry.submit_ts_us = options_.collect_latencies ? now_us() : 0;
        shard.ring.push_back(entry);
        enqueued_.fetch_add(1, std::memory_order_relaxed);
        CR_OBS_COUNT("serve.queue.enqueued");
        return true;
      }
      if (!options_.backpressure) break;
      shard.room.wait(lock);
    }
  }
  shed_.fetch_add(1, std::memory_order_relaxed);
  CR_OBS_COUNT("serve.queue.shed");
  return false;
}

std::size_t Server::pump(std::vector<ServerResult>& results) {
  const std::size_t num_shards = shards_.size();
  // Exactly-once drain: each shard's ring moves wholesale into pump-local
  // scratch under the shard lock; concurrent pumps therefore partition the
  // queued requests between them.
  std::vector<std::vector<Entry>> scratch(num_shards);
  std::size_t total = 0;
  for (std::size_t s = 0; s < num_shards; ++s) {
    Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.ring.empty()) continue;
    scratch[s].swap(shard.ring);
    shard.ring.reserve(options_.queue_depth);
    total += scratch[s].size();
    shard.room.notify_all();
  }
  if (total == 0) return 0;
  // Monotone time-integral proxy for instantaneous depth: every pump adds
  // the occupancy it observed, so depth-per-pump is recoverable from two
  // scrapes (DESIGN.md §12).
  CR_OBS_ADD("serve.queue.depth", total);

  parallel_for("server.pump", num_shards, 1, [&](std::size_t first,
                                                 std::size_t last) {
    for (std::size_t s = first; s < last; ++s) {
      const std::vector<Entry>& entries = scratch[s];
      if (entries.empty()) continue;
      // One epoch pin per shard chunk: every request drained here serves
      // under the same tables, even if a publish lands mid-chunk.
      const std::shared_ptr<ServerEpoch> epoch = current();
      CR_CHECK_MSG(epoch != nullptr, "pump with no published epoch");
      EpochPin pin(*epoch);
#ifndef CR_OBS_DISABLED
      obs::LogHistogram* latency_hist =
          options_.collect_latencies
              ? &obs::local_registry().log_histogram("serve.latency_us", 1e-2,
                                                     1e7, 16)
              : nullptr;
#endif
      for (const Entry& entry : entries) {
        CR_CHECK_MSG(entry.id < results.size(),
                     "result slot out of range for request id");
        std::size_t hops = 0;
        const std::uint64_t fp =
            epoch->serve(entry.request, options_.max_hops, &hops);
        ServerResult& slot = results[entry.id];
        slot.fingerprint = fp;
        slot.epoch = epoch->id();
        slot.hops = static_cast<std::uint32_t>(hops);
        if (options_.collect_latencies) {
          slot.latency_us = now_us() - entry.submit_ts_us;
#ifndef CR_OBS_DISABLED
          latency_hist->record(slot.latency_us);
#endif
        }
        slot.status.store(ServeStatus::kDelivered, std::memory_order_release);
      }
    }
  });
  served_.fetch_add(total, std::memory_order_relaxed);
  return total;
}

std::size_t Server::drain(std::vector<ServerResult>& results) {
  std::size_t total = 0;
  for (;;) {
    const std::size_t served = pump(results);
    if (served == 0 && queued() == 0) break;
    total += served;
  }
  return total;
}

void Server::stop() {
  stopped_.store(true, std::memory_order_release);
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->room.notify_all();
  }
}

std::size_t Server::queued() const {
  std::size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->ring.size();
  }
  return total;
}

ServerCounters Server::counters() const {
  ServerCounters c;
  c.submitted = submitted_.load(std::memory_order_relaxed);
  c.enqueued = enqueued_.load(std::memory_order_relaxed);
  c.shed = shed_.load(std::memory_order_relaxed);
  c.served = served_.load(std::memory_order_relaxed);
  c.swaps = swaps_.load(std::memory_order_relaxed);
  return c;
}

std::uint64_t Server::delivered_digest(
    const std::vector<ServerResult>& results) {
  std::uint64_t digest = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i].status.load(std::memory_order_acquire) !=
        ServeStatus::kDelivered) {
      continue;
    }
    digest ^= mix64(results[i].fingerprint + kGolden * (i + 1));
  }
  return digest;
}

}  // namespace compactroute

#pragma once
//
// Strict hop-by-hop packet runtime.
//
// The RouteResult-returning schemes compute a whole walk at once (using only
// per-node tables, but implicitly). This runtime makes the locality claim
// mechanical: a scheme is expressed as a pure *step function*
//     (current node, packet header)  ->  (deliver | next neighbor, header')
// and the executor physically forwards the packet, CHECKING that every next
// hop is a graph neighbor of the current node and metering the true header size.
// This is the routing-algorithm model of Section 1 of the paper, executable.
//
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "graph/metric.hpp"
#include "obs/trace.hpp"
#include "routing/scheme.hpp"

namespace compactroute {

class HopArena;

/// Which per-node tables a hop scheme steps against: the serve-time arena
/// (contiguous flat slabs, the default) or the schemes' own build-time
/// nested containers (the reference FSMs the golden suite compares against).
/// Both take byte-identical routes.
enum class HopTables { kArena, kReference };

/// Generic bounded packet header. Schemes assign meaning to the fields; all
/// of them are polylog-sized (ids, levels, phases). encoded_bits() is the
/// exact wire size for the given universe.
struct HopHeader {
  std::uint64_t dest = 0;          // destination key (label or name)
  std::uint8_t phase = 0;          // scheme-specific FSM state
  std::int16_t level = 0;          // hierarchy level / prev walk level
  std::int16_t exponent = 0;       // packing exponent j
  NodeId target = kInvalidNode;    // current intermediate goal (global id)
  NodeId aux = kInvalidNode;       // secondary goal (e.g. search anchor)
  std::uint64_t inner = 0;         // nested (underlying-scheme) state
  std::uint8_t inner_phase = 0;
  // A carried compact tree-routing label (Lemma 4.1): DFS index plus light
  // edges — O(log² n) bits, within the paper's header budget.
  NodeId tree_dfs = 0;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> light;
  NodeId extra = kInvalidNode;  // one more scheme-specific id slot

  /// Nested header of an underlying scheme (layered routing: the outer
  /// machine "rides" the inner one; header sizes add).
  std::unique_ptr<HopHeader> nested;

  HopHeader() = default;
  HopHeader(const HopHeader& other);
  HopHeader& operator=(const HopHeader& other);
  HopHeader(HopHeader&&) = default;
  HopHeader& operator=(HopHeader&&) = default;

  std::size_t encoded_bits(std::size_t n, int num_levels) const;
};

class HopScheme {
 public:
  virtual ~HopScheme() = default;

  virtual std::string name() const = 0;

  /// Header the source attaches for destination key `dest_key`.
  virtual HopHeader make_header(NodeId src, std::uint64_t dest_key) const = 0;

  struct Decision {
    bool deliver = false;
    NodeId next = kInvalidNode;
    HopHeader header;
  };

  /// One forwarding decision, a pure function of (at, header) and the tables
  /// of node `at`.
  virtual Decision step(NodeId at, const HopHeader& header) const = 0;

  /// Same decision, mutating `header` in place: returns true to deliver,
  /// else writes the next hop to *next. The serve loop uses this form —
  /// arena-backed schemes override it allocation-free; the default wraps
  /// step().
  virtual bool step_inplace(NodeId at, HopHeader& header, NodeId* next) const;

  /// Telemetry classification of a hop taken while `header` is in flight —
  /// which phase of the scheme's state machine the hop serves. A pure
  /// function of the header; the executor calls it on the post-decision
  /// header of every physical hop.
  virtual TracePhase phase_of(const HopHeader& header) const {
    (void)header;
    return TracePhase::kForward;
  }
};

struct HopRun {
  bool delivered = false;
  Path path;        // every consecutive pair is a graph edge
  Weight cost = 0;  // sum of traversed edge weights (normalized)
  std::size_t max_header_bits = 0;
  /// Bits of the header the source attached, before any hop mutated it.
  /// Recorded even under CR_OBS_DISABLED, so the metering invariant
  /// max_header_bits >= initial_header_bits stays auditable without traces.
  std::size_t initial_header_bits = 0;
  RouteTrace trace;  // phase-tagged hops; empty under CR_OBS_DISABLED
};

/// Executes the scheme hop by hop from src. Throws InvariantError if the
/// scheme ever forwards to a non-neighbor or exceeds max_hops.
HopRun execute_hops(const MetricSpace& metric, const HopScheme& scheme, NodeId src,
                    std::uint64_t dest_key, std::size_t max_hops = 0);

/// Same execution, shaped as a RouteResult (the trace rides along) — the
/// bridge between the strict runtime and RouteResult-based evaluation.
RouteResult hop_route(const MetricSpace& metric, const HopScheme& scheme,
                      NodeId src, std::uint64_t dest_key,
                      std::size_t max_hops = 0);

}  // namespace compactroute

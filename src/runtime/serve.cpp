#include "runtime/serve.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "core/check.hpp"
#include "core/parallel.hpp"
#include "core/prng.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/sharded.hpp"
#include "obs/spans.hpp"

namespace compactroute {

namespace {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

std::vector<ServeRequest> make_requests(
    std::size_t n, std::size_t count, std::uint64_t seed,
    const std::function<std::uint64_t(NodeId)>& dest_key_of) {
  CR_CHECK(n >= 2);
  Prng prng(seed);
  std::vector<ServeRequest> requests(count);
  for (ServeRequest& request : requests) {
    request.src = static_cast<NodeId>(prng.next_below(n));
    NodeId dest = static_cast<NodeId>(prng.next_below(n - 1));
    if (dest >= request.src) ++dest;  // uniform over nodes != src
    request.dest_key = dest_key_of(dest);
  }
  return requests;
}

std::uint64_t serve_one(const CsrGraph& csr, const HopScheme& scheme,
                        const ServeRequest& request, std::size_t max_hops,
                        std::size_t* hops, bool* delivered) {
  constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
  NodeId at = request.src;
  HopHeader header = scheme.make_header(request.src, request.dest_key);
  std::uint64_t fp = (request.dest_key * kFnvPrime) ^ request.src;
  std::size_t hop_count = 0;
  bool done = false;
  NodeId next = kInvalidNode;
  while (hop_count <= max_hops) {
    // In-place stepping: arena-backed schemes mutate the header with zero
    // allocations; reference schemes fall back to a step() copy internally.
    if (scheme.step_inplace(at, header, &next)) {
      done = true;
      break;
    }
    // The locality contract: every forwarded hop must be a real graph edge.
    // Low-degree spans (the common case in doubling metrics) certify with a
    // branchless sweep; CSR targets are sorted, so high degrees bisect.
    const auto targets = csr.arc_targets(at);
    bool is_edge = false;
    if (targets.size() <= 16) {
      for (const NodeId t : targets) is_edge |= (t == next);
    } else {
      is_edge = std::binary_search(targets.begin(), targets.end(), next);
    }
    CR_CHECK_MSG(is_edge, "serve: scheme forwarded to a non-neighbor");
    at = next;
    fp = (fp ^ at) * kFnvPrime;
    ++hop_count;
  }
  CR_CHECK_MSG(done, "serve: hop budget exceeded");
  if (hops != nullptr) *hops = hop_count;
  if (delivered != nullptr) *delivered = done;
  return fp;
}

ServeStats serve_batch(const CsrGraph& csr, const HopScheme& scheme,
                       const std::vector<ServeRequest>& requests,
                       const ServeOptions& options) {
  CR_OBS_SCOPED_TIMER("serve.batch");
  CR_OBS_SPAN("serve.batch", "serve");
  using Clock = std::chrono::steady_clock;

  const std::size_t count = requests.size();
  const std::size_t n = csr.num_nodes();
  const std::size_t max_hops =
      options.max_hops != 0 ? options.max_hops : 64 * n + 1024;

  // Per-request output slots, preallocated so workers write disjoint state
  // and the hop loop itself never allocates.
  std::vector<std::uint64_t> fingerprints(count, 0);
  std::vector<std::uint32_t> hop_counts(count, 0);
  std::vector<double> latencies_us(options.collect_latencies ? count : 0, 0);

  const auto wall_start = Clock::now();
#ifndef CR_OBS_DISABLED
  const bool instrument = options.instrument;
  const std::uint16_t scheme_id =
      instrument ? obs::FlightRecorder::global().intern_scheme(scheme.name())
                 : 0;
  const std::size_t sample_every =
      obs::SpanCollector::global().enabled() ? options.span_sample_every : 0;
#endif
  parallel_for("serve.batch", count, 64, [&](std::size_t first,
                                             std::size_t last) {
#ifndef CR_OBS_DISABLED
    // Shard handles resolve once per chunk (each lookup locks the shard's
    // own mutex); the steady-state per-request cost is two relaxed
    // histogram updates and one ring-buffer store.
    obs::LogHistogram* lat_hist = nullptr;
    obs::LogHistogram* hops_hist = nullptr;
    double chunk_t_us = 0;
    if (instrument) {
      obs::Registry& shard = obs::local_registry();
      if (options.collect_latencies) {
        lat_hist = &shard.log_histogram("serve.latency_us", 1e-2, 1e7, 16);
      }
      hops_hist = &shard.log_histogram("serve.route_hops", 1.0, 65536.0, 4);
      // Flight events share one timestamp per chunk: the ring is a crash-dump
      // aid, chunk granularity (64 requests) orders dumps well enough, and it
      // keeps a clock read off the per-request path.
      chunk_t_us = obs::trace_now_us();
    }
#endif
    auto run_one = [&](std::size_t i) {
      const auto start =
          options.collect_latencies ? Clock::now() : Clock::time_point{};
      std::size_t hops = 0;
      fingerprints[i] =
          serve_one(csr, scheme, requests[i], max_hops, &hops, nullptr);
      hop_counts[i] = static_cast<std::uint32_t>(hops);
      double lat_us = 0;
      if (options.collect_latencies) {
        lat_us =
            std::chrono::duration<double, std::micro>(Clock::now() - start)
                .count();
        latencies_us[i] = lat_us;
      }
#ifndef CR_OBS_DISABLED
      if (instrument) {
        if (lat_hist != nullptr) lat_hist->record(lat_us);
        hops_hist->record(static_cast<double>(hops));
        obs::FlightEvent event;
        event.t_us = chunk_t_us;
        event.dest_key = requests[i].dest_key;
        event.src = requests[i].src;
        event.lat_us = static_cast<float>(lat_us);
        event.hops =
            static_cast<std::uint16_t>(std::min<std::size_t>(hops, 0xffff));
        event.scheme_id = scheme_id;
        obs::FlightRecorder::global().record(event);
      }
#else
      (void)lat_us;
#endif
    };
    // Dispatch order: destination-sorted within the chunk, so consecutive
    // requests revisit overlapping arena rows while they are still cached.
    // Outputs land in per-index slots, so order never affects results.
    const std::size_t len = last - first;
    std::uint32_t order_buf[64];
    std::vector<std::uint32_t> order_spill;
    std::uint32_t* order = nullptr;
    if (options.sort_by_dest) {
      if (len > 64) {
        order_spill.resize(len);
        order = order_spill.data();
      } else {
        order = order_buf;
      }
      for (std::size_t k = 0; k < len; ++k) {
        order[k] = static_cast<std::uint32_t>(first + k);
      }
      std::sort(order, order + len, [&](std::uint32_t a, std::uint32_t b) {
        if (requests[a].dest_key != requests[b].dest_key) {
          return requests[a].dest_key < requests[b].dest_key;
        }
        return a < b;
      });
    }
    for (std::size_t k = 0; k < len; ++k) {
      const std::size_t i = order != nullptr ? order[k] : first + k;
#ifndef CR_OBS_DISABLED
      if (sample_every != 0 && i % sample_every == 0) {
        obs::SpanScope span("serve.request", "serve");
        run_one(i);
        continue;
      }
#endif
      run_one(i);
    }
  });
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - wall_start).count();

  ServeStats stats;
  stats.requests = count;
  stats.delivered = count;  // serve_one throws on any non-delivery
  stats.workers = Executor::global().workers();
  stats.elapsed_s = elapsed_s;
  stats.routes_per_sec =
      elapsed_s > 0 ? static_cast<double>(count) / elapsed_s : 0;
  for (std::size_t i = 0; i < count; ++i) {
    stats.total_hops += hop_counts[i];
    stats.fingerprint ^= mix64(fingerprints[i] + 0x9e3779b97f4a7c15ULL * (i + 1));
  }
  if (options.collect_latencies && count > 0) {
    std::sort(latencies_us.begin(), latencies_us.end());
    stats.p50_us = percentile(latencies_us, 0.50);
    stats.p90_us = percentile(latencies_us, 0.90);
    stats.p99_us = percentile(latencies_us, 0.99);
    stats.p999_us = percentile(latencies_us, 0.999);
    stats.max_us = latencies_us.back();
  }
  CR_OBS_ADD("serve.requests", count);
  CR_OBS_ADD("serve.hops", stats.total_hops);
  return stats;
}

void preregister_serving_metrics() {
#ifndef CR_OBS_DISABLED
  obs::Registry& shard = obs::local_registry();
  (void)shard.counter("serve.queue.depth");
  (void)shard.counter("serve.queue.enqueued");
  (void)shard.counter("serve.queue.shed");
  (void)shard.counter("serve.epoch.swaps");
  (void)shard.log_histogram("serve.latency_us", 1e-2, 1e7, 16);
  (void)shard.log_histogram("serve.route_hops", 1.0, 65536.0, 4);
#endif
}

}  // namespace compactroute

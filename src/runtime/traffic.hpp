#pragma once
//
// Adversarial request-stream shapes for the serving engine (DESIGN.md §13).
//
// The server soaks so far pushed uniformly random pairs — the kindest
// possible load. Real traffic is skewed (a few destinations absorb most
// flows), bursty (incast: everyone talks to one service at once), and, for
// an adversary, targeted (the pairs with the worst stretch the scheme can
// be made to produce). Each shape here compiles to a plain deterministic
// std::vector<ServerRequest>, so the same stream drives `crtool server`,
// bench_internet, and tests, and a given (shape, seed, n) is reproducible
// bit for bit.
//
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "runtime/server.hpp"

namespace compactroute {

enum class TrafficShape : std::uint8_t {
  kUniform = 0,    // independent uniform (src, dest) pairs — the baseline
  kZipf = 1,       // destinations Zipf(skew) over a seeded rank permutation
  kIncast = 2,     // every request targets one seeded hotspot destination
  kWorstPairs = 3, // replay of mined worst-stretch pairs (TrafficOptions)
};

/// Parses "uniform" | "zipf" | "incast" | "worst"; false on unknown names.
bool traffic_shape_from_string(const std::string& name, TrafficShape* out);
const char* traffic_shape_name(TrafficShape shape);

struct TrafficOptions {
  TrafficShape shape = TrafficShape::kUniform;
  /// Zipf exponent s > 0: destination of rank r drawn with probability
  /// proportional to (r + 1)^-s. ~1 matches web/DNS popularity curves.
  double zipf_skew = 1.0;
  /// kWorstPairs replay list (each entry already carries its scheme); the
  /// stream cycles it. Mined by audit::mine_worst_pairs.
  std::vector<ServerRequest> pairs;
};

/// Builds a deterministic stream of `count` requests over nodes [0, n).
/// Schemes cycle through `mix` (request i rides mix[i % mix.size()]) except
/// for kWorstPairs, where each mined pair keeps the scheme it was mined
/// against. src != dest always holds.
std::vector<ServerRequest> make_traffic(std::size_t n, std::size_t count,
                                        std::uint64_t seed,
                                        std::span<const ServeScheme> mix,
                                        const TrafficOptions& options);

}  // namespace compactroute

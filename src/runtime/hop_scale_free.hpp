#pragma once
//
// Hop-by-hop adapter for the scale-free labeled scheme (Algorithm 5 as a
// finite-state machine in the packet header).
//
// Header anatomy (all polylog bits):
//   dest      — destination label l(v)
//   phase     — WALK / TO_CENTER / SEARCH / RETURN / FALLBACK_MOVE / TO_DEST
//   level     — previous walk level i_{k-1}
//   exponent  — packing exponent j
//   aux       — anchor center c of the current search
//   target    — movement goal: the next search-tree node (virtual-edge
//               traversal rides the Lemma 4.3 next-hop chains) or a center
//   tree_dfs + light — the retrieved local tree label l(v; c, j), copied into
//               the header by the search-tree holder (Algorithm 5 line 9)
//
// Every decision uses only node-local tables: ring hits, region-tree parent
// pointers, search-tree child ranges/chunks, and compact-tree-router state —
// by default read from the flat HopArena slabs (HopTables::kReference keeps
// the original container walks; routes are byte-identical either way).
//
#include <cstdint>
#include <limits>
#include <memory>

#include "labeled/scale_free_labeled.hpp"
#include "runtime/hop_scheme.hpp"

namespace compactroute {

class ScaleFreeHopScheme final : public HopScheme {
 public:
  /// level field value before the first walk hop (no previous level).
  static constexpr std::int16_t kNoPrevLevel =
      std::numeric_limits<std::int16_t>::max();

  explicit ScaleFreeHopScheme(const ScaleFreeLabeledScheme& scheme,
                              HopTables tables = HopTables::kArena);
  /// Shared prebuilt arena (must carry the scale-free slab).
  ScaleFreeHopScheme(const ScaleFreeLabeledScheme& scheme,
                     std::shared_ptr<const HopArena> arena);

  std::string name() const override { return "hop/labeled-scale-free"; }

  HopHeader make_header(NodeId src, std::uint64_t dest_key) const override;
  Decision step(NodeId at, const HopHeader& header) const override;
  bool step_inplace(NodeId at, HopHeader& header, NodeId* next) const override;
  TracePhase phase_of(const HopHeader& header) const override;

 private:
  friend class ScaleFreeNameIndependentHopScheme;

  enum Phase : std::uint8_t {
    kWalk = 0,
    kToCenter = 1,
    kSearch = 2,
    kReturn = 3,
    kFallbackMove = 4,
    kToDest = 5,
  };

  Decision reference_step(NodeId at, const HopHeader& header) const;
  bool arena_step(NodeId at, HopHeader& header, NodeId* next) const;

  const ScaleFreeLabeledScheme* scheme_;
  std::shared_ptr<const HopArena> arena_;
};

}  // namespace compactroute

#include "runtime/hop_scale_free.hpp"

#include "core/check.hpp"
#include "nets/rnet.hpp"
#include "obs/metrics.hpp"
#include "runtime/hop_arena.hpp"

namespace compactroute {

ScaleFreeHopScheme::ScaleFreeHopScheme(const ScaleFreeLabeledScheme& scheme,
                                       HopTables tables)
    : scheme_(&scheme) {
  if (tables == HopTables::kArena) {
    arena_ = HopArena::build(scheme.hierarchy(), nullptr, nullptr, &scheme,
                             nullptr, nullptr);
  }
}

ScaleFreeHopScheme::ScaleFreeHopScheme(const ScaleFreeLabeledScheme& scheme,
                                       std::shared_ptr<const HopArena> arena)
    : scheme_(&scheme), arena_(std::move(arena)) {
  CR_CHECK(arena_ && arena_->sf_present);
}

HopHeader ScaleFreeHopScheme::make_header(NodeId /*src*/,
                                          std::uint64_t dest_key) const {
  HopHeader header;
  header.dest = dest_key;
  header.phase = kWalk;
  header.level = kNoPrevLevel;
  return header;
}

TracePhase ScaleFreeHopScheme::phase_of(const HopHeader& header) const {
  switch (static_cast<Phase>(header.phase)) {
    case kWalk:
      return TracePhase::kLabelLookup;  // greedy ring walk toward the label
    case kToCenter:
      return TracePhase::kHandoff;  // Algorithm 5 line 7 handoff
    case kSearch:
    case kReturn:
      return TracePhase::kNetSearch;  // search-tree descent / report back
    case kFallbackMove:
      return TracePhase::kFallback;  // sweep of the top-level centers
    case kToDest:
      return TracePhase::kTreeRoute;  // compact-tree final leg
  }
  return TracePhase::kForward;
}

bool ScaleFreeHopScheme::step_inplace(NodeId at, HopHeader& header,
                                      NodeId* next) const {
  if (arena_) return arena_step(at, header, next);
  return HopScheme::step_inplace(at, header, next);
}

HopScheme::Decision ScaleFreeHopScheme::step(NodeId at,
                                             const HopHeader& header) const {
  if (arena_) {
    Decision decision;
    decision.header = header;
    decision.deliver = arena_step(at, decision.header, &decision.next);
    return decision;
  }
  return reference_step(at, header);
}

bool ScaleFreeHopScheme::arena_step(NodeId at, HopHeader& h,
                                    NodeId* next) const {
  CR_OBS_HOT_COUNT("hop.arena.steps");
  const HopArena& a = *arena_;
  const std::size_t n = a.n;
  const NodeId dest_label = static_cast<NodeId>(h.dest);

  // Per the routing model (Section 1), every relay first checks delivery —
  // chains through the handoff structures can pass the destination itself.
  if (a.leaf_label[at] == dest_label) return true;

  const int settle_budget = 8 * (a.sf.max_exponent + 4) + 64;
  for (int guard = 0; guard < settle_budget; ++guard) {
    switch (static_cast<Phase>(h.phase)) {
      case kWalk: {
        // Minimal ring hit: first containment in the level-ascending slab.
        const std::uint32_t end = a.sf.node_off[at + 1];
        const std::uint32_t hit =
            ring_first_hit(a.sf.lo.data(), a.sf.hi.data(), a.sf.node_off[at],
                           end, dest_label);
        CR_CHECK_MSG(hit < end, "top ring always holds the hierarchy root");
        const std::int16_t level = a.sf.level[hit];
        if (a.sf.x[hit] != at && level <= h.level &&
            a.sf.dist[hit] >= a.sf.walk_threshold[level]) {
          h.level = level;
          *next = a.sf.next[hit];
          a.prefetch_sf_rings(*next);
          return false;
        }
        // Handoff (Algorithm 5 line 7): j = smallest exponent whose cell
        // already covers the walk radius.
        const Weight radius = a.sf.radius[level];
        const std::size_t base = at * static_cast<std::size_t>(a.sf.max_exponent + 1);
        std::int16_t j = 0;
        while (j + 1 <= a.sf.max_exponent &&
               a.sf.size_radius[base + j + 1] <= radius) {
          ++j;
        }
        h.exponent = j;
        h.phase = kToCenter;
        break;
      }

      case kToCenter: {
        const std::size_t jn = static_cast<std::size_t>(h.exponent) * n;
        const std::int32_t rid = a.sf.region_id[jn + at];
        const NodeId center = a.sf.center[rid];
        if (at == center) {
          h.aux = center;     // search anchor
          h.target = center;  // search cursor starts at the root
          h.phase = kSearch;
          break;
        }
        const std::uint32_t idx =
            a.sf.rt_base[rid] +
            static_cast<std::uint32_t>(a.sf.region_local[jn + at]);
        const NodeId up = a.sf.rt_parent_global[idx];
        CR_CHECK(up != kInvalidNode);
        *next = up;
        arena_prefetch(&a.leaf_label[up]);
        arena_prefetch(&a.sf.region_id[jn + up]);
        return false;
      }

      case kSearch: {
        if (at != h.target) {
          // Riding the next-hop chain of a virtual search-tree edge
          // (Lemma 4.3).
          *next = a.chain_next(at, h.target);
          a.prefetch_chains(*next);
          return false;
        }
        const std::size_t jn = static_cast<std::size_t>(h.exponent) * n;
        const std::int32_t rid = a.sf.region_id[jn + h.aux];
        const std::int32_t t = a.sf.search_tree[rid];
        const std::uint32_t row = a.trees.locate(t, at);
        const std::uint32_t child = a.trees.child_containing(row, h.dest);
        if (child != HopArena::TreeBank::npos) {
          h.target = a.trees.child_global[child];
          break;  // next loop iteration emits the chain hop
        }
        std::uint64_t data = 0;
        if (a.trees.holds(row, h.dest, &data)) {
          // The stored datum IS the local routing label l(v; c, j): copy it
          // into the header for the final tree leg.
          const std::uint32_t dest_row =
              a.sf.rt_base[rid] + static_cast<std::uint32_t>(data);
          h.tree_dfs = a.sf.rt_dfs_in[dest_row];
          h.light.clear();
          const std::uint32_t light_end = a.sf.rt_light_off[dest_row + 1];
          for (std::uint32_t e = a.sf.rt_light_off[dest_row]; e < light_end;
               ++e) {
            h.light.emplace_back(a.sf.rt_light_anchor[e], a.sf.rt_light_port[e]);
          }
          h.inner_phase = 1;
        } else {
          h.inner_phase = 0;
        }
        h.phase = kReturn;
        // Return target: parent search node (or self if already the root).
        const NodeId parent = a.trees.parent_global[row];
        h.target = parent == kInvalidNode ? at : parent;
        break;
      }

      case kReturn: {
        if (at != h.target) {
          *next = a.chain_next(at, h.target);
          a.prefetch_chains(*next);
          return false;
        }
        const std::size_t jn = static_cast<std::size_t>(h.exponent) * n;
        const std::int32_t rid = a.sf.region_id[jn + h.aux];
        const std::int32_t t = a.sf.search_tree[rid];
        if (at != a.trees.root_global[t]) {
          const std::uint32_t row = a.trees.locate(t, at);
          const NodeId up = a.trees.parent_global[row];
          CR_CHECK(up != kInvalidNode);
          h.target = up;
          break;
        }
        // Back at the center (search root).
        if (h.inner_phase == 1) {
          h.phase = kToDest;
          break;
        }
        if (h.exponent < a.sf.max_exponent) {
          // Escalation guard: retry one packing level coarser.
          h.exponent = static_cast<std::int16_t>(h.exponent + 1);
          h.phase = kToCenter;
          break;
        }
        // Final fallback: visit the other top-level centers in order.
        std::size_t k = static_cast<std::size_t>(h.inner);
        while (k < a.sf.top_peer.size() && a.sf.top_peer[k] == at) ++k;
        CR_CHECK_MSG(k < a.sf.top_peer.size(),
                     "top-level cells jointly index every node");
        h.inner = k + 1;
        h.aux = a.sf.top_peer[k];
        h.target = a.sf.top_peer[k];
        h.phase = kFallbackMove;
        break;
      }

      case kFallbackMove: {
        if (at != h.target) {
          *next = a.chain_next(at, h.target);
          a.prefetch_chains(*next);
          return false;
        }
        h.phase = kSearch;  // target == aux == this center (the search root)
        break;
      }

      case kToDest: {
        const std::size_t jn = static_cast<std::size_t>(h.exponent) * n;
        const std::int32_t rid = a.sf.region_id[jn + at];
        const std::uint32_t idx =
            a.sf.rt_base[rid] +
            static_cast<std::uint32_t>(a.sf.region_local[jn + at]);
        if (h.tree_dfs == a.sf.rt_dfs_in[idx]) {
          CR_CHECK(a.leaf_label[at] == dest_label);
          return true;
        }
        if (h.tree_dfs < a.sf.rt_dfs_in[idx] ||
            h.tree_dfs > a.sf.rt_dfs_out[idx]) {
          const NodeId up = a.sf.rt_parent_global[idx];
          CR_CHECK_MSG(up != kInvalidNode, "destination outside the tree");
          *next = up;
        } else if (h.tree_dfs >= a.sf.rt_heavy_in[idx] &&
                   h.tree_dfs <= a.sf.rt_heavy_out[idx]) {
          *next = a.sf.rt_heavy_global[idx];
        } else {
          NodeId hop = kInvalidNode;
          for (const auto& [anchor, port] : h.light) {
            if (anchor == a.sf.rt_dfs_in[idx]) {
              CR_CHECK(port < a.sf.rt_child_off[idx + 1] -
                                  a.sf.rt_child_off[idx]);
              hop = a.sf.rt_child_global[a.sf.rt_child_off[idx] + port];
              break;
            }
          }
          CR_CHECK_MSG(
              hop != kInvalidNode,
              "label must record the light edge at every light ancestor");
          *next = hop;
        }
        arena_prefetch(&a.leaf_label[*next]);
        arena_prefetch(&a.sf.region_local[jn + *next]);
        return false;
      }
    }
  }
  CR_CHECK_MSG(false, "phase machine did not settle");
  return false;
}

HopScheme::Decision ScaleFreeHopScheme::reference_step(
    NodeId at, const HopHeader& in) const {
  CR_OBS_HOT_COUNT("hop.scale_free.steps");
  const NodeId dest_label = static_cast<NodeId>(in.dest);
  Decision decision;
  decision.header = in;
  HopHeader& h = decision.header;

  // Per the routing model (Section 1), every relay first checks delivery —
  // chains through the handoff structures can pass the destination itself.
  if (scheme_->hierarchy().leaf_label(at) == dest_label) {
    decision.deliver = true;
    return decision;
  }

  // Phase transitions that do not move the packet loop here; every exit is
  // either delivery or one edge of movement. Escalations can chain several
  // transitions at one node, so the budget scales with the packing depth.
  const int settle_budget = 8 * (scheme_->max_exponent() + 4) + 64;
  for (int guard = 0; guard < settle_budget; ++guard) {
    switch (static_cast<Phase>(h.phase)) {
      case kWalk: {
        CR_OBS_HOT_COUNT("hop.ref.ring_scans");
        if (scheme_->hierarchy().leaf_label(at) == dest_label) {
          decision.deliver = true;
          return decision;
        }
        const auto [level, entry] = scheme_->minimal_hit(at, dest_label);
        const Weight threshold =
            level_radius(level) / (2 * scheme_->epsilon()) - level_radius(level);
        if (entry->x != at && level <= h.level && entry->dist_x >= threshold) {
          h.level = static_cast<std::int16_t>(level);
          decision.next = entry->next_hop;
          return decision;
        }
        // Handoff (Algorithm 5 line 7).
        h.exponent = static_cast<std::int16_t>(
            scheme_->density_exponent(at, level_radius(level)));
        h.phase = kToCenter;
        break;
      }

      case kToCenter: {
        const auto& region = scheme_->region_of(h.exponent, at);
        if (at == region.center) {
          h.aux = region.center;   // search anchor
          h.target = region.center;  // search cursor starts at the root
          h.phase = kSearch;
          break;
        }
        const int local = region.tree->local_id(at);
        CR_CHECK(local >= 0);
        decision.next = region.tree->global_id(region.tree->parent(local));
        return decision;
      }

      case kSearch: {
        if (at != h.target) {
          // Riding the next-hop chain of a virtual search-tree edge
          // (Lemma 4.3).
          decision.next = scheme_->chain_next(at, h.target);
          return decision;
        }
        CR_OBS_HOT_COUNT("hop.ref.tree_reads");
        const auto& region = scheme_->region_of(h.exponent, h.aux);
        const SearchTree& search = *region.search;
        const int local = search.tree().local_id(at);
        CR_CHECK(local >= 0);
        const int child = search.child_containing(local, in.dest);
        if (child >= 0) {
          h.target = search.tree().global_id(child);
          break;  // next loop iteration emits the chain hop
        }
        SearchTree::Data data = 0;
        if (search.holds(local, in.dest, &data)) {
          // The stored datum IS the local routing label l(v; c, j): copy it
          // into the header for the final tree leg.
          const TreeLabel& label = region.router->label(static_cast<int>(data));
          h.tree_dfs = label.dfs;
          h.light.assign(label.light_edges.begin(), label.light_edges.end());
          h.inner_phase = 1;
        } else {
          h.inner_phase = 0;
        }
        h.phase = kReturn;
        // Return target: parent search node (or self if already the root).
        const int parent = search.tree().parent(local);
        h.target = parent < 0 ? at : search.tree().global_id(parent);
        break;
      }

      case kReturn: {
        if (at != h.target) {
          decision.next = scheme_->chain_next(at, h.target);
          return decision;
        }
        CR_OBS_HOT_COUNT("hop.ref.tree_reads");
        const auto& region = scheme_->region_of(h.exponent, h.aux);
        if (at != region.search->tree().root_global()) {
          const int local = region.search->tree().local_id(at);
          CR_CHECK(local >= 0);
          const int parent = region.search->tree().parent(local);
          CR_CHECK(parent >= 0);
          h.target = region.search->tree().global_id(parent);
          break;
        }
        // Back at the center (search root).
        if (h.inner_phase == 1) {
          h.phase = kToDest;
          break;
        }
        if (h.exponent < scheme_->max_exponent()) {
          // Escalation guard: retry one packing level coarser.
          h.exponent = static_cast<std::int16_t>(h.exponent + 1);
          h.phase = kToCenter;
          break;
        }
        // Final fallback: visit the other top-level centers in order.
        const auto& peers = scheme_->regions(scheme_->max_exponent());
        std::size_t k = static_cast<std::size_t>(h.inner);
        while (k < peers.size() && peers[k].center == at) ++k;
        CR_CHECK_MSG(k < peers.size(),
                     "top-level cells jointly index every node");
        h.inner = k + 1;
        h.aux = peers[k].center;
        h.target = peers[k].center;
        h.phase = kFallbackMove;
        break;
      }

      case kFallbackMove: {
        if (at != h.target) {
          decision.next = scheme_->chain_next(at, h.target);
          return decision;
        }
        h.phase = kSearch;  // target == aux == this center (the search root)
        break;
      }

      case kToDest: {
        CR_OBS_HOT_COUNT("hop.ref.tree_reads");
        const auto& region = scheme_->region_of(h.exponent, h.aux);
        const int local = region.tree->local_id(at);
        CR_CHECK(local >= 0);
        TreeLabel label;
        label.dfs = h.tree_dfs;
        label.light_edges.assign(h.light.begin(), h.light.end());
        const int next_local = region.router->step(local, label);
        if (next_local == local) {
          CR_CHECK(scheme_->hierarchy().leaf_label(at) == dest_label);
          decision.deliver = true;
          return decision;
        }
        decision.next = region.tree->global_id(next_local);
        return decision;
      }
    }
  }
  CR_CHECK_MSG(false, "phase machine did not settle");
  return decision;
}

}  // namespace compactroute

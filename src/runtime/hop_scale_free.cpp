#include "runtime/hop_scale_free.hpp"

#include <limits>

#include "core/check.hpp"
#include "nets/rnet.hpp"
#include "obs/metrics.hpp"

namespace compactroute {

namespace {
constexpr std::int16_t kNoPrevLevel = std::numeric_limits<std::int16_t>::max();
}

HopHeader ScaleFreeHopScheme::make_header(NodeId /*src*/,
                                          std::uint64_t dest_key) const {
  HopHeader header;
  header.dest = dest_key;
  header.phase = kWalk;
  header.level = kNoPrevLevel;
  return header;
}

TracePhase ScaleFreeHopScheme::phase_of(const HopHeader& header) const {
  switch (static_cast<Phase>(header.phase)) {
    case kWalk:
      return TracePhase::kLabelLookup;  // greedy ring walk toward the label
    case kToCenter:
      return TracePhase::kHandoff;  // Algorithm 5 line 7 handoff
    case kSearch:
    case kReturn:
      return TracePhase::kNetSearch;  // search-tree descent / report back
    case kFallbackMove:
      return TracePhase::kFallback;  // sweep of the top-level centers
    case kToDest:
      return TracePhase::kTreeRoute;  // compact-tree final leg
  }
  return TracePhase::kForward;
}

HopScheme::Decision ScaleFreeHopScheme::step(NodeId at,
                                             const HopHeader& in) const {
  CR_OBS_HOT_COUNT("hop.scale_free.steps");
  const NodeId dest_label = static_cast<NodeId>(in.dest);
  Decision decision;
  decision.header = in;
  HopHeader& h = decision.header;

  // Per the routing model (Section 1), every relay first checks delivery —
  // chains through the handoff structures can pass the destination itself.
  if (scheme_->hierarchy().leaf_label(at) == dest_label) {
    decision.deliver = true;
    return decision;
  }

  // Phase transitions that do not move the packet loop here; every exit is
  // either delivery or one edge of movement. Escalations can chain several
  // transitions at one node, so the budget scales with the packing depth.
  const int settle_budget = 8 * (scheme_->max_exponent() + 4) + 64;
  for (int guard = 0; guard < settle_budget; ++guard) {
    switch (static_cast<Phase>(h.phase)) {
      case kWalk: {
        if (scheme_->hierarchy().leaf_label(at) == dest_label) {
          decision.deliver = true;
          return decision;
        }
        const auto [level, entry] = scheme_->minimal_hit(at, dest_label);
        const Weight threshold =
            level_radius(level) / (2 * scheme_->epsilon()) - level_radius(level);
        if (entry->x != at && level <= h.level && entry->dist_x >= threshold) {
          h.level = static_cast<std::int16_t>(level);
          decision.next = entry->next_hop;
          return decision;
        }
        // Handoff (Algorithm 5 line 7).
        h.exponent = static_cast<std::int16_t>(
            scheme_->density_exponent(at, level_radius(level)));
        h.phase = kToCenter;
        break;
      }

      case kToCenter: {
        const auto& region = scheme_->region_of(h.exponent, at);
        if (at == region.center) {
          h.aux = region.center;   // search anchor
          h.target = region.center;  // search cursor starts at the root
          h.phase = kSearch;
          break;
        }
        const int local = region.tree->local_id(at);
        CR_CHECK(local >= 0);
        decision.next = region.tree->global_id(region.tree->parent(local));
        return decision;
      }

      case kSearch: {
        if (at != h.target) {
          // Riding the next-hop chain of a virtual search-tree edge
          // (Lemma 4.3).
          decision.next = scheme_->chain_next(at, h.target);
          return decision;
        }
        const auto& region = scheme_->region_of(h.exponent, h.aux);
        const SearchTree& search = *region.search;
        const int local = search.tree().local_id(at);
        CR_CHECK(local >= 0);
        const int child = search.child_containing(local, in.dest);
        if (child >= 0) {
          h.target = search.tree().global_id(child);
          break;  // next loop iteration emits the chain hop
        }
        SearchTree::Data data = 0;
        if (search.holds(local, in.dest, &data)) {
          // The stored datum IS the local routing label l(v; c, j): copy it
          // into the header for the final tree leg.
          const TreeLabel& label = region.router->label(static_cast<int>(data));
          h.tree_dfs = label.dfs;
          h.light.assign(label.light_edges.begin(), label.light_edges.end());
          h.inner_phase = 1;
        } else {
          h.inner_phase = 0;
        }
        h.phase = kReturn;
        // Return target: parent search node (or self if already the root).
        const int parent = search.tree().parent(local);
        h.target = parent < 0 ? at : search.tree().global_id(parent);
        break;
      }

      case kReturn: {
        if (at != h.target) {
          decision.next = scheme_->chain_next(at, h.target);
          return decision;
        }
        const auto& region = scheme_->region_of(h.exponent, h.aux);
        if (at != region.search->tree().root_global()) {
          const int local = region.search->tree().local_id(at);
          CR_CHECK(local >= 0);
          const int parent = region.search->tree().parent(local);
          CR_CHECK(parent >= 0);
          h.target = region.search->tree().global_id(parent);
          break;
        }
        // Back at the center (search root).
        if (h.inner_phase == 1) {
          h.phase = kToDest;
          break;
        }
        if (h.exponent < scheme_->max_exponent()) {
          // Escalation guard: retry one packing level coarser.
          h.exponent = static_cast<std::int16_t>(h.exponent + 1);
          h.phase = kToCenter;
          break;
        }
        // Final fallback: visit the other top-level centers in order.
        const auto& peers = scheme_->regions(scheme_->max_exponent());
        std::size_t k = static_cast<std::size_t>(h.inner);
        while (k < peers.size() && peers[k].center == at) ++k;
        CR_CHECK_MSG(k < peers.size(),
                     "top-level cells jointly index every node");
        h.inner = k + 1;
        h.aux = peers[k].center;
        h.target = peers[k].center;
        h.phase = kFallbackMove;
        break;
      }

      case kFallbackMove: {
        if (at != h.target) {
          decision.next = scheme_->chain_next(at, h.target);
          return decision;
        }
        h.phase = kSearch;  // target == aux == this center (the search root)
        break;
      }

      case kToDest: {
        const auto& region = scheme_->region_of(h.exponent, h.aux);
        const int local = region.tree->local_id(at);
        CR_CHECK(local >= 0);
        TreeLabel label;
        label.dfs = h.tree_dfs;
        label.light_edges.assign(h.light.begin(), h.light.end());
        const int next_local = region.router->step(local, label);
        if (next_local == local) {
          CR_CHECK(scheme_->hierarchy().leaf_label(at) == dest_label);
          decision.deliver = true;
          return decision;
        }
        decision.next = region.tree->global_id(next_local);
        return decision;
      }
    }
  }
  CR_CHECK_MSG(false, "phase machine did not settle");
  return decision;
}

}  // namespace compactroute

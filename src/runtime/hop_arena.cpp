#include "runtime/hop_arena.hpp"

#include <algorithm>
#include <unordered_map>
#include <utility>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#endif

#if defined(__linux__)
#include <sys/mman.h>
#include <unistd.h>
#endif

#include "labeled/hierarchical_labeled.hpp"
#include "labeled/scale_free_labeled.hpp"
#include "nameind/scale_free_nameind.hpp"
#include "nameind/simple_nameind.hpp"
#include "nets/rnet.hpp"
#include "obs/metrics.hpp"
#include "routing/naming.hpp"
#include "search/search_tree.hpp"
#include "trees/compact_tree_router.hpp"
#include "trees/tree.hpp"

namespace compactroute {

namespace {

/// Appends one search tree to the bank in the SearchTree::store() preorder
/// (children in RootedTree order), so a lookup descent walks forward in
/// memory. Returns the tree's bank id.
std::int32_t add_tree(HopArena::TreeBank& bank, const SearchTree& st) {
  if (bank.node_base.empty()) {
    bank.node_base.push_back(0);
    bank.lookup_off.push_back(0);
    bank.child_off.push_back(0);
    bank.chunk_off.push_back(0);
  }
  const RootedTree& tree = st.tree();
  const std::size_t m = tree.size();
  const std::int32_t id = static_cast<std::int32_t>(bank.root_global.size());

  std::vector<int> order;
  order.reserve(m);
  std::vector<int> stack = {tree.root_local()};
  while (!stack.empty()) {
    const int node = stack.back();
    stack.pop_back();
    order.push_back(node);
    const auto& kids = tree.children(node);
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) stack.push_back(*it);
  }
  CR_CHECK(order.size() == m);

  const std::uint32_t base = static_cast<std::uint32_t>(bank.global.size());
  for (std::size_t pos = 0; pos < m; ++pos) {
    const int local = order[pos];
    bank.global.push_back(tree.global_id(local));
    const int parent = tree.parent(local);
    bank.parent_global.push_back(parent < 0 ? kInvalidNode
                                            : tree.global_id(parent));
    for (const int child : tree.children(local)) {
      const SearchTree::KeyRange range = st.subtree_key_range(child);
      bank.child_lo.push_back(range.lo);
      bank.child_hi.push_back(range.hi);
      bank.child_global.push_back(tree.global_id(child));
    }
    bank.child_off.push_back(static_cast<std::uint32_t>(bank.child_lo.size()));
    for (const auto& [key, data] : st.chunk(local)) {
      bank.chunk_key.push_back(key);
      bank.chunk_data.push_back(data);
    }
    bank.chunk_off.push_back(static_cast<std::uint32_t>(bank.chunk_key.size()));
  }

  // Per-tree sorted (global -> row) table.
  std::vector<std::pair<NodeId, std::uint32_t>> ids(m);
  for (std::size_t pos = 0; pos < m; ++pos) {
    ids[pos] = {bank.global[base + pos], base + static_cast<std::uint32_t>(pos)};
  }
  std::sort(ids.begin(), ids.end());
  for (const auto& [global, row] : ids) {
    bank.lookup_global.push_back(global);
    bank.lookup_row.push_back(row);
  }
  bank.lookup_off.push_back(static_cast<std::uint32_t>(bank.lookup_global.size()));

  bank.root_global.push_back(tree.root_global());
  bank.node_base.push_back(static_cast<std::uint32_t>(bank.global.size()));
  return id;
}

template <typename T>
std::size_t slab_bytes(const Slab<T>& slab) {
  return slab.capacity() * sizeof(T);
}

/// Appends the never-matching tail (lo = max, hi = 0) that lets
/// ring_first_hit read one full vector past the last segment.
void pad_ring_rows(Slab<NodeId>& lo, Slab<NodeId>& hi) {
  for (std::uint32_t i = 0; i < kRingScanPad; ++i) {
    lo.push_back(kInvalidNode);
    hi.push_back(0);
  }
}

// ---- ring_first_hit lane-width variants ----
//
// All variants scan 1/8/16 entries per iteration and return the smallest
// matching index. A vector block may straddle `end`: indices past `end`
// belong to the next node's segment (or the pad tail) and are clamped away.
// A genuine hit always has a smaller in-block index than any straddling
// false hit, so the clamp can only ever turn a miss into `end`.

std::uint32_t ring_find_scalar(const NodeId* lo, const NodeId* hi,
                               std::uint32_t begin, std::uint32_t end,
                               NodeId key) {
  for (std::uint32_t i = begin; i < end; ++i) {
    if (lo[i] <= key && key <= hi[i]) return i;
  }
  return end;
}

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define CR_RING_FIND_SIMD 1

__attribute__((target("avx2"))) std::uint32_t ring_find_avx2(
    const NodeId* lo, const NodeId* hi, std::uint32_t begin, std::uint32_t end,
    NodeId key) {
  // AVX2 has no unsigned 32-bit compare; bias by 2^31 and compare signed.
  const __m256i bias = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  const __m256i k =
      _mm256_xor_si256(_mm256_set1_epi32(static_cast<int>(key)), bias);
  for (std::uint32_t i = begin; i < end; i += 8) {
    const __m256i vlo = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(lo + i)), bias);
    const __m256i vhi = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(hi + i)), bias);
    // contained = !(lo > key) && !(key > hi)
    const __m256i miss = _mm256_or_si256(_mm256_cmpgt_epi32(vlo, k),
                                         _mm256_cmpgt_epi32(k, vhi));
    const int mask =
        ~_mm256_movemask_ps(_mm256_castsi256_ps(miss)) & 0xff;
    if (mask != 0) {
      const std::uint32_t idx =
          i + static_cast<std::uint32_t>(__builtin_ctz(
                  static_cast<unsigned>(mask)));
      return idx < end ? idx : end;
    }
  }
  return end;
}

__attribute__((target("avx512f"))) std::uint32_t ring_find_avx512(
    const NodeId* lo, const NodeId* hi, std::uint32_t begin, std::uint32_t end,
    NodeId key) {
  const __m512i k = _mm512_set1_epi32(static_cast<int>(key));
  for (std::uint32_t i = begin; i < end; i += 16) {
    const __m512i vlo = _mm512_loadu_si512(lo + i);
    const __m512i vhi = _mm512_loadu_si512(hi + i);
    const __mmask16 hit = _mm512_cmple_epu32_mask(vlo, k) &
                          _mm512_cmple_epu32_mask(k, vhi);
    if (hit != 0) {
      const std::uint32_t idx =
          i + static_cast<std::uint32_t>(__builtin_ctz(
                  static_cast<unsigned>(hit)));
      return idx < end ? idx : end;
    }
  }
  return end;
}
#endif  // x86-64 GCC/Clang

using RingFindFn = std::uint32_t (*)(const NodeId*, const NodeId*,
                                     std::uint32_t, std::uint32_t, NodeId);

RingFindFn pick_ring_find() {
#ifdef CR_RING_FIND_SIMD
  if (__builtin_cpu_supports("avx512f")) return ring_find_avx512;
  if (__builtin_cpu_supports("avx2")) return ring_find_avx2;
#endif
  return ring_find_scalar;
}

const RingFindFn g_ring_find = pick_ring_find();

}  // namespace

std::uint32_t ring_first_hit(const NodeId* lo, const NodeId* hi,
                             std::uint32_t begin, std::uint32_t end,
                             NodeId key) {
  return g_ring_find(lo, hi, begin, end, key);
}

std::shared_ptr<const HopArena> HopArena::build(
    const NetHierarchy& hierarchy, const Naming* naming,
    const HierarchicalLabeledScheme* hier_scheme,
    const ScaleFreeLabeledScheme* sf_scheme,
    const SimpleNameIndependentScheme* simple_scheme,
    const ScaleFreeNameIndependentScheme* sfni_scheme) {
  CR_OBS_SCOPED_TIMER("arena.build");
  CR_CHECK_MSG(!simple_scheme || hier_scheme,
               "the simple NI runtime rides the hierarchical rings");
  CR_CHECK_MSG(!sfni_scheme || sf_scheme,
               "the scale-free NI runtime rides the scale-free rings");
  CR_CHECK_MSG(!(simple_scheme || sfni_scheme) || naming,
               "name-independent serving needs the naming");

  auto arena = std::make_shared<HopArena>();
  HopArena& a = *arena;
  const std::size_t n = hierarchy.net(0).size();  // Y_0 = V
  const int top = hierarchy.top_level();
  const int levels = top + 1;
  a.n = n;
  a.top_level = top;
  a.hier_present = hier_scheme != nullptr;
  a.sf_present = sf_scheme != nullptr;
  a.simple_present = simple_scheme != nullptr;
  a.sfni_present = sfni_scheme != nullptr;

  a.leaf_label.resize(n);
  for (NodeId v = 0; v < n; ++v) a.leaf_label[v] = hierarchy.leaf_label(v);
  if (naming != nullptr) {
    a.name_of.resize(n);
    for (NodeId v = 0; v < n; ++v) a.name_of[v] = naming->name_of(v);
  }
  if (simple_scheme != nullptr || sfni_scheme != nullptr) {
    a.net_parent.assign(static_cast<std::size_t>(levels) * n, kInvalidNode);
    for (int level = 0; level <= top; ++level) {
      for (const NodeId x : hierarchy.net(level)) {
        a.net_parent[static_cast<std::size_t>(level) * n + x] =
            hierarchy.netting_parent(level, x);
      }
    }
  }

  if (hier_scheme != nullptr) {
    RingSlab& r = a.hier;
    r.levels = levels;
    r.level_off.resize(n * static_cast<std::size_t>(levels) + 1);
    std::size_t entries = 0;
    for (NodeId u = 0; u < n; ++u) {
      const auto& rings = hier_scheme->rings(u);
      for (int level = 0; level < levels; ++level) {
        r.level_off[u * static_cast<std::size_t>(levels) + level] =
            static_cast<std::uint32_t>(entries);
        entries += rings[level].size();
      }
    }
    r.level_off.back() = static_cast<std::uint32_t>(entries);
    r.lo.reserve(entries + kRingScanPad);
    r.hi.reserve(entries + kRingScanPad);
    r.next.reserve(entries);
    r.x.reserve(entries);
    for (NodeId u = 0; u < n; ++u) {
      for (const auto& level : hier_scheme->rings(u)) {
        for (const auto& entry : level) {
          r.lo.push_back(entry.range.lo);
          r.hi.push_back(entry.range.hi);
          r.next.push_back(entry.next_hop);
          r.x.push_back(entry.x);
        }
      }
    }
    pad_ring_rows(r.lo, r.hi);
  }

  if (sf_scheme != nullptr) {
    SfSlab& s = a.sf;
    const int max_exp = sf_scheme->max_exponent();
    s.max_exponent = max_exp;

    // Rings over the sparse level sets.
    s.node_off.resize(n + 1);
    std::size_t entries = 0;
    for (NodeId u = 0; u < n; ++u) {
      s.node_off[u] = static_cast<std::uint32_t>(entries);
      for (const auto& ring : sf_scheme->rings(u)) entries += ring.size();
    }
    s.node_off[n] = static_cast<std::uint32_t>(entries);
    s.lo.reserve(entries + kRingScanPad);
    s.hi.reserve(entries + kRingScanPad);
    s.next.reserve(entries);
    s.x.reserve(entries);
    s.dist.reserve(entries);
    s.level.reserve(entries);
    for (NodeId u = 0; u < n; ++u) {
      const auto& level_set = sf_scheme->level_set(u);
      const auto& rings = sf_scheme->rings(u);
      for (std::size_t k = 0; k < level_set.size(); ++k) {
        for (const auto& entry : rings[k]) {
          s.lo.push_back(entry.range.lo);
          s.hi.push_back(entry.range.hi);
          s.next.push_back(entry.next_hop);
          s.x.push_back(entry.x);
          s.dist.push_back(entry.dist_x);
          s.level.push_back(static_cast<std::int16_t>(level_set[k]));
        }
      }
    }
    pad_ring_rows(s.lo, s.hi);

    s.radius.resize(levels);
    s.walk_threshold.resize(levels);
    for (int level = 0; level < levels; ++level) {
      s.radius[level] = level_radius(level);
      // The reference expression, verbatim, for bit-identical comparisons.
      s.walk_threshold[level] =
          level_radius(level) / (2 * sf_scheme->epsilon()) - level_radius(level);
    }

    s.size_radius.resize(n * static_cast<std::size_t>(max_exp + 1));
    for (NodeId u = 0; u < n; ++u) {
      for (int j = 0; j <= max_exp; ++j) {
        s.size_radius[u * static_cast<std::size_t>(max_exp + 1) + j] =
            sf_scheme->size_radius(j, u);
      }
    }

    // Flattened regions: rid = region_base[j] + ball index.
    std::vector<std::uint32_t> region_base(max_exp + 2, 0);
    for (int j = 0; j <= max_exp; ++j) {
      region_base[j + 1] =
          region_base[j] +
          static_cast<std::uint32_t>(sf_scheme->regions(j).size());
    }
    const std::size_t num_regions = region_base[max_exp + 1];

    s.region_id.resize(static_cast<std::size_t>(max_exp + 1) * n);
    s.region_local.resize(static_cast<std::size_t>(max_exp + 1) * n);
    for (int j = 0; j <= max_exp; ++j) {
      for (NodeId u = 0; u < n; ++u) {
        const std::size_t slot = static_cast<std::size_t>(j) * n + u;
        s.region_id[slot] = static_cast<std::int32_t>(
            region_base[j] + sf_scheme->region_index(j, u));
        const int local = sf_scheme->region_of(j, u).tree->local_id(u);
        CR_CHECK(local >= 0);
        s.region_local[slot] = local;
      }
    }

    s.center.resize(num_regions);
    s.search_tree.resize(num_regions);
    s.rt_base.resize(num_regions + 1);
    s.rt_base[0] = 0;
    s.rt_child_off.push_back(0);
    s.rt_light_off.push_back(0);
    std::size_t rid = 0;
    for (int j = 0; j <= max_exp; ++j) {
      for (const auto& region : sf_scheme->regions(j)) {
        const RootedTree& tree = *region.tree;
        const CompactTreeRouter& router = *region.router;
        const std::size_t m = tree.size();
        s.center[rid] = region.center;
        s.search_tree[rid] = add_tree(a.trees, *region.search);
        for (std::size_t local = 0; local < m; ++local) {
          const int l = static_cast<int>(local);
          s.rt_global.push_back(tree.global_id(l));
          const int parent = tree.parent(l);
          s.rt_parent_global.push_back(parent < 0 ? kInvalidNode
                                                  : tree.global_id(parent));
          s.rt_dfs_in.push_back(router.dfs_in(l));
          s.rt_dfs_out.push_back(router.dfs_out(l));
          const int heavy = router.heavy_child(l);
          if (heavy >= 0) {
            s.rt_heavy_global.push_back(tree.global_id(heavy));
            s.rt_heavy_in.push_back(router.dfs_in(heavy));
            s.rt_heavy_out.push_back(router.dfs_out(heavy));
          } else {
            s.rt_heavy_global.push_back(kInvalidNode);
            s.rt_heavy_in.push_back(1);
            s.rt_heavy_out.push_back(0);
          }
          for (const int child : tree.children(l)) {
            s.rt_child_global.push_back(tree.global_id(child));
          }
          s.rt_child_off.push_back(
              static_cast<std::uint32_t>(s.rt_child_global.size()));
          for (const auto& [anchor, port] : router.label(l).light_edges) {
            s.rt_light_anchor.push_back(anchor);
            s.rt_light_port.push_back(port);
          }
          s.rt_light_off.push_back(
              static_cast<std::uint32_t>(s.rt_light_anchor.size()));
        }
        s.rt_base[rid + 1] = static_cast<std::uint32_t>(s.rt_global.size());
        ++rid;
      }
    }
    CR_CHECK(rid == num_regions);

    s.chain_off.resize(n + 1);
    std::size_t chain_entries = 0;
    for (NodeId u = 0; u < n; ++u) {
      s.chain_off[u] = static_cast<std::uint32_t>(chain_entries);
      chain_entries += sf_scheme->chains(u).size();
    }
    s.chain_off[n] = static_cast<std::uint32_t>(chain_entries);
    s.chain_target.reserve(chain_entries);
    s.chain_hop.reserve(chain_entries);
    for (NodeId u = 0; u < n; ++u) {
      for (const auto& [target, next] : sf_scheme->chains(u)) {
        s.chain_target.push_back(target);
        s.chain_hop.push_back(next);
      }
    }

    for (const auto& region : sf_scheme->regions(max_exp)) {
      s.top_peer.push_back(region.center);
    }
  }

  if (simple_scheme != nullptr) {
    a.simple_tree_of.assign(static_cast<std::size_t>(levels) * n, -1);
    for (int level = 0; level <= top; ++level) {
      for (const NodeId anchor : hierarchy.net(level)) {
        a.simple_tree_of[static_cast<std::size_t>(level) * n + anchor] =
            add_tree(a.trees, simple_scheme->level_tree(level, anchor));
      }
    }
  }

  if (sfni_scheme != nullptr) {
    a.sfni_tree_of.assign(static_cast<std::size_t>(levels) * n, -1);
    a.sfni_root.assign(static_cast<std::size_t>(levels) * n, kInvalidNode);
    // Delegated levels share packed-ball trees; dedup by identity.
    std::unordered_map<const SearchTree*, std::int32_t> seen;
    for (int level = 0; level <= top; ++level) {
      for (const NodeId anchor : hierarchy.net(level)) {
        NodeId root = kInvalidNode;
        const SearchTree& st =
            sfni_scheme->search_structure(level, anchor, &root);
        auto [it, inserted] = seen.try_emplace(&st, -1);
        if (inserted) it->second = add_tree(a.trees, st);
        const std::size_t slot = static_cast<std::size_t>(level) * n + anchor;
        a.sfni_tree_of[slot] = it->second;
        a.sfni_root[slot] = root;
      }
    }
  }

  if (a.trees.root_global.empty()) {
    a.trees.node_base.push_back(0);
    a.trees.lookup_off.push_back(0);
    a.trees.child_off.push_back(0);
    a.trees.chunk_off.push_back(0);
  }

  CR_OBS_ADD("arena.bytes", a.memory_bytes());
  a.advise_hot();
  return arena;
}

namespace {

/// madvise the page-aligned interior of one slab allocation. Slabs are
/// 64-byte aligned, not page aligned, so round the start up and the end down;
/// sub-page slabs are skipped (nothing addressable at page granularity).
void advise_slab_range(const void* p, std::size_t bytes) {
#if defined(__linux__)
  static const std::size_t page =
      static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  const std::uintptr_t raw = reinterpret_cast<std::uintptr_t>(p);
  const std::uintptr_t lo = (raw + page - 1) & ~(page - 1);
  const std::uintptr_t hi = (raw + bytes) & ~(page - 1);
  if (hi <= lo) return;
  void* base = reinterpret_cast<void*>(lo);
  const std::size_t len = hi - lo;
  (void)::madvise(base, len, MADV_WILLNEED);
#if defined(MADV_HUGEPAGE)
  if (len >= (std::size_t{2} << 20)) (void)::madvise(base, len, MADV_HUGEPAGE);
#endif
#else
  (void)p;
  (void)bytes;
#endif
}

template <typename T>
void advise_slab(const Slab<T>& slab) {
  advise_slab_range(slab.data(), slab.size() * sizeof(T));
}

}  // namespace

void HopArena::advise_hot() const {
  // The rows every hop touches: ring SoA lanes, the tree bank's descent
  // arrays, and the scale-free router/chain rows. Offset tables are tiny and
  // ride along with their data pages; the remaining bookkeeping slabs are
  // cold enough to leave to demand paging.
  advise_slab(leaf_label);
  advise_slab(name_of);
  advise_slab(hier.lo);
  advise_slab(hier.hi);
  advise_slab(hier.next);
  advise_slab(hier.x);
  advise_slab(sf.lo);
  advise_slab(sf.hi);
  advise_slab(sf.next);
  advise_slab(sf.x);
  advise_slab(sf.dist);
  advise_slab(sf.level);
  advise_slab(sf.rt_global);
  advise_slab(sf.rt_parent_global);
  advise_slab(sf.rt_dfs_in);
  advise_slab(sf.rt_dfs_out);
  advise_slab(sf.chain_target);
  advise_slab(sf.chain_hop);
  advise_slab(trees.global);
  advise_slab(trees.parent_global);
  advise_slab(trees.child_lo);
  advise_slab(trees.child_hi);
  advise_slab(trees.child_global);
  advise_slab(trees.chunk_key);
  advise_slab(trees.chunk_data);
  advise_slab(trees.lookup_global);
  advise_slab(trees.lookup_row);
}

std::size_t HopArena::memory_bytes() const {
  std::size_t bytes = slab_bytes(leaf_label) + slab_bytes(name_of) +
                      slab_bytes(net_parent);
  bytes += slab_bytes(hier.level_off) + slab_bytes(hier.lo) +
           slab_bytes(hier.hi) + slab_bytes(hier.next) + slab_bytes(hier.x);
  bytes += slab_bytes(sf.node_off) + slab_bytes(sf.lo) + slab_bytes(sf.hi) +
           slab_bytes(sf.next) + slab_bytes(sf.x) + slab_bytes(sf.dist) +
           slab_bytes(sf.level) + slab_bytes(sf.radius) +
           slab_bytes(sf.walk_threshold) + slab_bytes(sf.size_radius) +
           slab_bytes(sf.region_id) + slab_bytes(sf.region_local) +
           slab_bytes(sf.center) + slab_bytes(sf.search_tree) +
           slab_bytes(sf.rt_base) + slab_bytes(sf.rt_global) +
           slab_bytes(sf.rt_parent_global) + slab_bytes(sf.rt_dfs_in) +
           slab_bytes(sf.rt_dfs_out) + slab_bytes(sf.rt_heavy_global) +
           slab_bytes(sf.rt_heavy_in) + slab_bytes(sf.rt_heavy_out) +
           slab_bytes(sf.rt_child_off) + slab_bytes(sf.rt_child_global) +
           slab_bytes(sf.rt_light_off) + slab_bytes(sf.rt_light_anchor) +
           slab_bytes(sf.rt_light_port) + slab_bytes(sf.chain_off) +
           slab_bytes(sf.chain_target) + slab_bytes(sf.chain_hop) +
           slab_bytes(sf.top_peer);
  bytes += slab_bytes(trees.node_base) + slab_bytes(trees.root_global) +
           slab_bytes(trees.global) + slab_bytes(trees.parent_global) +
           slab_bytes(trees.child_off) + slab_bytes(trees.child_lo) +
           slab_bytes(trees.child_hi) + slab_bytes(trees.child_global) +
           slab_bytes(trees.chunk_off) + slab_bytes(trees.chunk_key) +
           slab_bytes(trees.chunk_data) + slab_bytes(trees.lookup_off) +
           slab_bytes(trees.lookup_global) + slab_bytes(trees.lookup_row);
  bytes += slab_bytes(simple_tree_of) + slab_bytes(sfni_tree_of) +
           slab_bytes(sfni_root);
  return bytes;
}

}  // namespace compactroute

#pragma once
//
// Serve-time arena: the per-node hop state of every scheme, recompiled at
// scheme-freeze time into contiguous cache-line-aligned flat arrays.
//
// The build-time layout (nested vectors of ring entries, per-tree
// unordered_map local-id lookups, per-node chunk vectors) makes every hop a
// chain of dependent cache misses. The arena flattens all of it:
//
//   * ring entries as (range_lo, range_hi, next_hop, x) SoA rows in one
//     dense slab per scheme, indexed by a per-node(-per-level) CSR offset
//     table — a hop's minimal-ring-hit is one branchless linear scan;
//   * search trees packed in DFS preorder (the store() distribution order),
//     with children's subtree key ranges, chunk key/data pairs, and
//     parent/global links as parallel arrays, plus a sorted global->position
//     table per tree replacing RootedTree::local_id's hash lookup;
//   * the scale-free region state (Voronoi tree parents, compact-router
//     DFS intervals + heavy intervals + port lists + light-edge labels,
//     Lemma 4.3 chain entries, size radii, region membership) flattened into
//     O(1)-indexable slabs.
//
// The arena is a pure re-layout: the hop runtimes stepping against it take
// byte-identical routes to the reference (nested-vector) runtimes — enforced
// by the golden fingerprint suite in tests/test_hop_arena.cpp.
//
// Layout invariants (DESIGN.md §11): every slab is 64-byte aligned; ring
// entries are level-ascending within a node (first containment hit ==
// minimal-level hit); tree nodes are packed in the preorder used by
// SearchTree::store(), so a descent walks forward in memory; all CSR offset
// tables have one trailing entry closing the last range.
//
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "core/check.hpp"
#include "core/types.hpp"
#include "graph/metric.hpp"

namespace compactroute {

class NetHierarchy;
class Naming;
class HierarchicalLabeledScheme;
class ScaleFreeLabeledScheme;
class SimpleNameIndependentScheme;
class ScaleFreeNameIndependentScheme;

/// Prefetch hint for the next hop's slab rows (no-op off GCC/Clang).
#if defined(__GNUC__) || defined(__clang__)
inline void arena_prefetch(const void* p) { __builtin_prefetch(p); }
#else
inline void arena_prefetch(const void*) {}
#endif

/// Minimal 64-byte-aligned allocator so every slab starts on a cache line.
template <typename T, std::size_t Align = 64>
struct AlignedAlloc {
  using value_type = T;
  // The non-type Align parameter defeats allocator_traits' default rebind
  // synthesis; spell it out.
  template <typename U>
  struct rebind {
    using other = AlignedAlloc<U, Align>;
  };
  AlignedAlloc() = default;
  template <typename U>
  AlignedAlloc(const AlignedAlloc<U, Align>&) {}
  T* allocate(std::size_t count) {
    return static_cast<T*>(
        ::operator new(count * sizeof(T), std::align_val_t(Align)));
  }
  void deallocate(T* p, std::size_t) {
    ::operator delete(p, std::align_val_t(Align));
  }
  template <typename U>
  bool operator==(const AlignedAlloc<U, Align>&) const {
    return true;
  }
};

template <typename T>
using Slab = std::vector<T, AlignedAlloc<T>>;

/// Trailing never-matching pad entries (lo = max, hi = 0) appended to every
/// ring slab's lo/hi rows so the vectorized first-hit scan may read one full
/// vector past a node's segment without leaving the allocation.
inline constexpr std::uint32_t kRingScanPad = 16;

/// Index of the first entry in [begin, end) with lo[i] <= key <= hi[i], or
/// `end` on a miss. Dispatches at load time to the widest available lane
/// width (AVX-512 / AVX2 / scalar); all variants return the same index. The
/// lo/hi rows must carry kRingScanPad pad entries past the last segment.
std::uint32_t ring_first_hit(const NodeId* lo, const NodeId* hi,
                             std::uint32_t begin, std::uint32_t end,
                             NodeId key);

class HopArena {
 public:
  /// Compiles the arena for whichever schemes are present (null = absent).
  /// `simple` requires `hier`; `sfni` requires `sf`; the NI schemes require
  /// `naming`. Works for snapshot-loaded stacks: only query-time tables are
  /// read, never the metric backend.
  static std::shared_ptr<const HopArena> build(
      const NetHierarchy& hierarchy, const Naming* naming,
      const HierarchicalLabeledScheme* hier, const ScaleFreeLabeledScheme* sf,
      const SimpleNameIndependentScheme* simple,
      const ScaleFreeNameIndependentScheme* sfni);

  std::size_t n = 0;
  int top_level = 0;
  bool hier_present = false;
  bool sf_present = false;
  bool simple_present = false;
  bool sfni_present = false;

  // ---- flat node tables ----
  Slab<NodeId> leaf_label;       // [n] netting-tree DFS leaf label l(v)
  Slab<std::uint64_t> name_of;   // [n] original names; empty without naming
  Slab<NodeId> net_parent;       // [(top+1)*n] netting parent per (level, x);
                                 // kInvalidNode off the level's net

  /// Hierarchical-scheme rings: node-major, level-ascending SoA slab. Entry
  /// range of (u, l) is [level_off[u*levels+l], level_off[u*levels+l+1]);
  /// the whole node is [level_off[u*levels], level_off[(u+1)*levels]].
  struct RingSlab {
    int levels = 0;                 // top_level + 1
    Slab<std::uint32_t> level_off;  // [n*levels + 1]
    Slab<NodeId> lo, hi, next, x;   // SoA rows
  };
  RingSlab hier;

  /// Scale-free labeled state: rings over the sparse level set R(u) (with
  /// per-entry level + d(u, x)), walk thresholds, size radii, flattened
  /// region membership, region-tree/router rows, search-tree ids, Lemma 4.3
  /// chains, and the top-level fallback peers.
  struct SfSlab {
    int max_exponent = 0;  // J

    // Rings: node-major, level-set-ascending.
    Slab<std::uint32_t> node_off;  // [n + 1]
    Slab<NodeId> lo, hi, next, x;
    Slab<Weight> dist;          // d(u, x) per entry
    Slab<std::int16_t> level;   // hierarchy level per entry

    // Per hierarchy level l: 2^l and the Algorithm 5 line 3 walk threshold
    // 2^l/(2ε) - 2^l, precomputed with the reference expression so the
    // comparison is bit-identical.
    Slab<Weight> radius;          // [top+1]
    Slab<Weight> walk_threshold;  // [top+1]

    Slab<Weight> size_radius;  // [n*(J+1)], u-major: r_u(j) at u*(J+1)+j

    // Region membership, O(1): index j*n + u.
    Slab<std::int32_t> region_id;     // flattened region index (all j)
    Slab<std::int32_t> region_local;  // local id of u in its region tree

    // Per region rid (flattened over j then ball index).
    Slab<NodeId> center;             // [R]
    Slab<std::int32_t> search_tree;  // [R] TreeBank id of T'(c, r_c(j))
    Slab<std::uint32_t> rt_base;     // [R+1] region-tree row base

    // Region-tree/router rows, indexed rt_base[rid] + ORIGINAL tree local id
    // (search trees store original local ids as data — the indexing must
    // match).
    Slab<NodeId> rt_global;         // local -> global id
    Slab<NodeId> rt_parent_global;  // kInvalidNode at the root
    Slab<NodeId> rt_dfs_in, rt_dfs_out;
    Slab<NodeId> rt_heavy_global;          // kInvalidNode for leaves
    Slab<NodeId> rt_heavy_in, rt_heavy_out;  // empty interval for leaves
    Slab<std::uint32_t> rt_child_off;      // [rows+1] ports
    Slab<NodeId> rt_child_global;          // child global id per port
    Slab<std::uint32_t> rt_light_off;      // [rows+1] label light edges
    Slab<std::uint32_t> rt_light_anchor, rt_light_port;

    // Lemma 4.3 next-hop chains: per node, (target, next) sorted by target.
    Slab<std::uint32_t> chain_off;  // [n+1]
    Slab<NodeId> chain_target, chain_hop;

    Slab<NodeId> top_peer;  // centers of ℬ_J in region order (fallback sweep)
  };
  SfSlab sf;

  /// All search trees, DFS-preorder-packed. Node row a = node_base[t] + pos.
  struct TreeBank {
    Slab<std::uint32_t> node_base;  // [T+1]
    Slab<NodeId> root_global;       // [T]

    Slab<NodeId> global;         // [rows] pos -> global id
    Slab<NodeId> parent_global;  // [rows] kInvalidNode at the root

    Slab<std::uint32_t> child_off;       // [rows+1]
    Slab<std::uint64_t> child_lo, child_hi;  // child subtree key ranges
    Slab<NodeId> child_global;

    Slab<std::uint32_t> chunk_off;  // [rows+1]
    Slab<std::uint64_t> chunk_key, chunk_data;

    // Per tree, sorted by global id: global -> row (replaces the
    // RootedTree::local_id hash map on the serve path).
    Slab<std::uint32_t> lookup_off;  // [T+1]
    Slab<NodeId> lookup_global;
    Slab<std::uint32_t> lookup_row;

    /// Row of `global` in tree t; CR_CHECKs membership.
    std::uint32_t locate(std::int32_t t, NodeId global) const;

    /// First child of row `a` whose subtree key range holds `key`; npos when
    /// the descent stops at `a`. Same scan order as
    /// SearchTree::child_containing.
    static constexpr std::uint32_t npos = 0xffffffffu;
    std::uint32_t child_containing(std::uint32_t a, std::uint64_t key) const;

    /// Chunk scan of row `a` (SearchTree::holds).
    bool holds(std::uint32_t a, std::uint64_t key, std::uint64_t* data) const;
  };
  TreeBank trees;

  // NI search-structure dispatch, index level*n + anchor (-1 / kInvalidNode
  // off the net).
  Slab<std::int32_t> simple_tree_of;  // simple NI: T(u(i), 2^i/ε)
  Slab<std::int32_t> sfni_tree_of;    // SF NI: own or delegated tree id
  Slab<NodeId> sfni_root;             // SF NI: anchor or ball center

  /// Minimal-level hierarchical ring hit for `key` at `at` -> next hop.
  NodeId hier_ring_next(NodeId at, NodeId key) const;

  /// Lemma 4.3 chain entry at `at` toward `target`.
  NodeId chain_next(NodeId at, NodeId target) const;

  // Prefetch contract: when a step decides `next`, it prefetches the rows
  // the next node's decision will read first.
  void prefetch_hier_rings(NodeId u) const {
    arena_prefetch(&leaf_label[u]);
    arena_prefetch(&hier.level_off[u * static_cast<std::size_t>(hier.levels)]);
  }
  void prefetch_sf_rings(NodeId u) const {
    arena_prefetch(&leaf_label[u]);
    arena_prefetch(&sf.node_off[u]);
  }
  void prefetch_chains(NodeId u) const {
    arena_prefetch(&leaf_label[u]);
    arena_prefetch(&sf.chain_off[u]);
  }

  /// Total slab bytes (diagnostics / memory accounting).
  std::size_t memory_bytes() const;

  /// madvise the big hot slabs (ring rows, tree bank, router rows) as
  /// WILLNEED — and HUGEPAGE where large enough for THP to apply — so a
  /// freshly compiled arena is paged in before the first request hits it
  /// rather than faulting down the serve path. Called by build(); a no-op off
  /// Linux. Purely advisory: failures are ignored.
  void advise_hot() const;
};

inline std::uint32_t HopArena::TreeBank::locate(std::int32_t t,
                                                NodeId node) const {
  std::uint32_t lo = lookup_off[t];
  std::uint32_t hi = lookup_off[t + 1];
  while (lo < hi) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    if (lookup_global[mid] < node) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  CR_CHECK(lo < lookup_off[t + 1] && lookup_global[lo] == node);
  return lookup_row[lo];
}

inline std::uint32_t HopArena::TreeBank::child_containing(
    std::uint32_t a, std::uint64_t key) const {
  const std::uint32_t end = child_off[a + 1];
  for (std::uint32_t e = child_off[a]; e < end; ++e) {
    if (child_lo[e] <= key && key <= child_hi[e]) return e;
  }
  return npos;
}

inline bool HopArena::TreeBank::holds(std::uint32_t a, std::uint64_t key,
                                      std::uint64_t* data) const {
  const std::uint32_t end = chunk_off[a + 1];
  for (std::uint32_t e = chunk_off[a]; e < end; ++e) {
    if (chunk_key[e] == key) {
      *data = chunk_data[e];
      return true;
    }
  }
  return false;
}

inline NodeId HopArena::hier_ring_next(NodeId at, NodeId key) const {
  const std::size_t base = at * static_cast<std::size_t>(hier.levels);
  const std::uint32_t end = hier.level_off[base + hier.levels];
  const std::uint32_t i =
      ring_first_hit(hier.lo.data(), hier.hi.data(), hier.level_off[base], end,
                     key);
  CR_CHECK_MSG(i < end, "top ring always holds the hierarchy root");
  CR_CHECK(hier.x[i] != at);
  return hier.next[i];
}

inline NodeId HopArena::chain_next(NodeId at, NodeId target) const {
  std::uint32_t lo = sf.chain_off[at];
  std::uint32_t hi = sf.chain_off[at + 1];
  while (lo < hi) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    if (sf.chain_target[mid] < target) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  CR_CHECK_MSG(lo < sf.chain_off[at + 1] && sf.chain_target[lo] == target,
               "missing Lemma 4.3 chain entry");
  return sf.chain_hop[lo];
}

}  // namespace compactroute

#include "runtime/hop_scheme.hpp"

#include <algorithm>

#include "core/bits.hpp"
#include "core/check.hpp"
#include "obs/metrics.hpp"

namespace compactroute {

HopHeader::HopHeader(const HopHeader& other)
    : dest(other.dest),
      phase(other.phase),
      level(other.level),
      exponent(other.exponent),
      target(other.target),
      aux(other.aux),
      inner(other.inner),
      inner_phase(other.inner_phase),
      tree_dfs(other.tree_dfs),
      light(other.light),
      extra(other.extra) {
  if (other.nested) nested = std::make_unique<HopHeader>(*other.nested);
}

HopHeader& HopHeader::operator=(const HopHeader& other) {
  if (this == &other) return *this;
  HopHeader copy(other);
  *this = std::move(copy);
  return *this;
}

std::size_t HopHeader::encoded_bits(std::size_t n, int num_levels) const {
  const std::size_t id = id_bits(n);
  const std::size_t level = id_bits(static_cast<std::size_t>(num_levels) + 2);
  // dest + phase + level + exponent + three ids + nested key + nested phase
  // + carried tree label (dfs + light-edge list with a small count)
  // + recursively, the nested header.
  return id + 3 + level + id_bits(id + 2) + 3 * (id + 1) + id + 3 + (id + 6) +
         light.size() * 2 * id + 1 +
         (nested ? nested->encoded_bits(n, num_levels) : 0);
}

bool HopScheme::step_inplace(NodeId at, HopHeader& header, NodeId* next) const {
  Decision decision = step(at, header);
  if (decision.deliver) return true;
  header = std::move(decision.header);
  *next = decision.next;
  return false;
}

HopRun execute_hops(const MetricSpace& metric, const HopScheme& scheme, NodeId src,
                    std::uint64_t dest_key, std::size_t max_hops) {
  if (max_hops == 0) max_hops = 64 * metric.n() + 1024;
  HopRun run;
  run.path.push_back(src);
#ifndef CR_OBS_DISABLED
  run.trace.scheme = scheme.name();
#endif

  HopHeader header = scheme.make_header(src, dest_key);
  run.initial_header_bits = header.encoded_bits(metric.n(), metric.num_levels());
  run.max_header_bits = run.initial_header_bits;

  NodeId at = src;
  for (std::size_t hop = 0; hop <= max_hops; ++hop) {
    const HopScheme::Decision decision = scheme.step(at, header);
    if (decision.deliver) {
      run.delivered = true;
      CR_OBS_COUNT("runtime.routes");
      return run;
    }
    // The forwarding model: the next node must be a physical neighbor.
    const Weight edge = metric.graph().edge_weight(at, decision.next);
    CR_CHECK_MSG(edge < kInfiniteWeight,
                 "scheme forwarded to a non-neighbor — locality violation");
    const Weight hop_cost = edge / metric.normalization_scale();
    run.cost += hop_cost;
    header = decision.header;
    const std::size_t bits = header.encoded_bits(metric.n(), metric.num_levels());
    run.max_header_bits = std::max(run.max_header_bits, bits);
#ifndef CR_OBS_DISABLED
    run.trace.hops.push_back(
        TraceHop{at, decision.next, hop_cost, scheme.phase_of(header), bits});
    CR_OBS_COUNT("runtime.hops");
#endif
    at = decision.next;
    run.path.push_back(at);
  }
  CR_CHECK_MSG(false, "hop budget exhausted — scheme did not converge");
  return run;
}

RouteResult hop_route(const MetricSpace& metric, const HopScheme& scheme,
                      NodeId src, std::uint64_t dest_key, std::size_t max_hops) {
  HopRun run = execute_hops(metric, scheme, src, dest_key, max_hops);
  RouteResult result;
  result.delivered = run.delivered;
  result.path = std::move(run.path);
  result.cost = run.cost;
  result.trace = std::move(run.trace);
  return result;
}

}  // namespace compactroute

#include "runtime/hop_simple_ni.hpp"

#include "core/check.hpp"
#include "obs/metrics.hpp"
#include "runtime/hop_arena.hpp"

namespace compactroute {

SimpleNameIndependentHopScheme::SimpleNameIndependentHopScheme(
    const SimpleNameIndependentScheme& scheme,
    const HierarchicalLabeledScheme& underlying, HopTables tables)
    : scheme_(&scheme), underlying_(&underlying) {
  if (tables == HopTables::kArena) {
    arena_ = HopArena::build(scheme.hierarchy(), &scheme.naming(), &underlying,
                             nullptr, &scheme, nullptr);
  }
}

SimpleNameIndependentHopScheme::SimpleNameIndependentHopScheme(
    const SimpleNameIndependentScheme& scheme,
    const HierarchicalLabeledScheme& underlying,
    std::shared_ptr<const HopArena> arena)
    : scheme_(&scheme), underlying_(&underlying), arena_(std::move(arena)) {
  CR_CHECK(arena_ && arena_->hier_present && arena_->simple_present);
}

HopHeader SimpleNameIndependentHopScheme::make_header(
    NodeId src, std::uint64_t dest_key) const {
  HopHeader header;
  header.dest = dest_key;
  header.level = 0;
  header.aux = src;  // u(0) = the source itself
  header.inner = underlying_->label(src);
  header.inner_phase = kAtAnchor;
  return header;
}

TracePhase SimpleNameIndependentHopScheme::phase_of(
    const HopHeader& header) const {
  // Every physical hop rides the inner labeled machine; classify it by the
  // outer continuation — what the ride is *for*.
  switch (static_cast<Continuation>(header.inner_phase)) {
    case kAtAnchor:
      return TracePhase::kHandoff;  // climbing the zooming sequence u(i)
    case kSearchNode:
    case kSearchBack:
      return TracePhase::kNetSearch;
    case kDeliver:
      return TracePhase::kLabelLookup;  // final leg toward the found label
  }
  return TracePhase::kForward;
}

bool SimpleNameIndependentHopScheme::step_inplace(NodeId at, HopHeader& header,
                                                  NodeId* next) const {
  if (arena_) return arena_step(at, header, next);
  return HopScheme::step_inplace(at, header, next);
}

HopScheme::Decision SimpleNameIndependentHopScheme::step(
    NodeId at, const HopHeader& header) const {
  if (arena_) {
    Decision decision;
    decision.header = header;
    decision.deliver = arena_step(at, decision.header, &decision.next);
    return decision;
  }
  return reference_step(at, header);
}

bool SimpleNameIndependentHopScheme::arena_step(NodeId at, HopHeader& h,
                                                NodeId* next) const {
  CR_OBS_HOT_COUNT("hop.arena.steps");
  const HopArena& a = *arena_;
  const std::size_t n = a.n;

  const int settle_budget = 8 * (a.top_level + 4) + 64;
  for (int guard = 0; guard < settle_budget; ++guard) {
    // Riding: one greedy ring step of the underlying scheme.
    if (a.leaf_label[at] != static_cast<NodeId>(h.inner)) {
      *next = a.hier_ring_next(at, static_cast<NodeId>(h.inner));
      a.prefetch_hier_rings(*next);
      return false;
    }

    // The ride arrived: advance the outer (name-independent) machine.
    switch (static_cast<Continuation>(h.inner_phase)) {
      case kDeliver: {
        CR_CHECK(a.name_of[at] == h.dest);
        return true;
      }

      case kAtAnchor: {
        if (a.name_of[at] == h.dest) return true;
        // Start the local search at the root (the anchor itself).
        h.target = h.aux;
        h.inner_phase = kSearchNode;
        break;
      }

      case kSearchNode: {
        const std::int32_t t =
            a.simple_tree_of[static_cast<std::size_t>(h.level) * n + h.aux];
        CR_CHECK(t >= 0);
        const std::uint32_t row = a.trees.locate(t, at);
        const std::uint32_t child = a.trees.child_containing(row, h.dest);
        if (child != HopArena::TreeBank::npos) {
          const NodeId next_node = a.trees.child_global[child];
          h.target = next_node;
          h.inner = a.leaf_label[next_node];
          break;  // ride one virtual edge down
        }
        std::uint64_t found_label = 0;
        if (a.trees.holds(row, h.dest, &found_label)) {
          h.tree_dfs = static_cast<NodeId>(found_label);  // remember l(v)
          h.exponent = 1;                                 // "found" flag
        } else {
          h.exponent = 0;
        }
        // Report back toward the root (Algorithm 2 line 10).
        const NodeId parent = a.trees.parent_global[row];
        const NodeId up = parent == kInvalidNode ? at : parent;
        h.target = up;
        h.inner = a.leaf_label[up];
        h.inner_phase = kSearchBack;
        break;
      }

      case kSearchBack: {
        if (at != h.aux) {
          const std::int32_t t =
              a.simple_tree_of[static_cast<std::size_t>(h.level) * n + h.aux];
          CR_CHECK(t >= 0);
          const std::uint32_t row = a.trees.locate(t, at);
          const NodeId up = a.trees.parent_global[row];
          CR_CHECK(up != kInvalidNode);
          h.target = up;
          h.inner = a.leaf_label[up];
          break;
        }
        // Back at the anchor u(level).
        if (h.exponent == 1) {
          h.inner = h.tree_dfs;  // the retrieved label l(v)
          h.inner_phase = kDeliver;
          break;
        }
        // Climb to u(level+1) — its label is stored along the netting tree.
        CR_CHECK_MSG(h.level < a.top_level,
                     "top search ball covers the whole graph");
        const NodeId up =
            a.net_parent[static_cast<std::size_t>(h.level) * n + at];
        h.level = static_cast<std::int16_t>(h.level + 1);
        h.aux = up;
        h.inner = a.leaf_label[up];
        h.inner_phase = kAtAnchor;
        break;
      }
    }
  }
  CR_CHECK_MSG(false, "phase machine did not settle");
  return false;
}

HopScheme::Decision SimpleNameIndependentHopScheme::reference_step(
    NodeId at, const HopHeader& in) const {
  CR_OBS_HOT_COUNT("hop.simple_ni.steps");
  const NetHierarchy& hierarchy = scheme_->hierarchy();
  Decision decision;
  decision.header = in;
  HopHeader& h = decision.header;

  // Several levels can be processed at one physical node (tiny search trees
  // answer at their root), so the settle budget scales with the hierarchy.
  const int settle_budget = 8 * (hierarchy.top_level() + 4) + 64;
  for (int guard = 0; guard < settle_budget; ++guard) {
    // Riding: while the inner labeled target is not reached, take one greedy
    // ring step of the underlying scheme.
    if (hierarchy.leaf_label(at) != static_cast<NodeId>(h.inner)) {
      CR_OBS_HOT_COUNT("hop.ref.ring_scans");
      for (int level = 0;; ++level) {
        CR_CHECK(level <= hierarchy.top_level());
        bool stepped = false;
        for (const auto& entry : underlying_->rings(at)[level]) {
          if (entry.range.contains(static_cast<NodeId>(h.inner))) {
            CR_CHECK(entry.x != at);
            decision.next = entry.next_hop;
            stepped = true;
            break;
          }
        }
        if (stepped) break;
      }
      return decision;
    }

    // The ride arrived: advance the outer (name-independent) machine.
    switch (static_cast<Continuation>(h.inner_phase)) {
      case kDeliver: {
        CR_CHECK(scheme_->naming().name_of(at) == h.dest);
        decision.deliver = true;
        return decision;
      }

      case kAtAnchor: {
        if (scheme_->naming().name_of(at) == h.dest) {
          decision.deliver = true;
          return decision;
        }
        // Start the local search at the root (the anchor itself).
        h.target = h.aux;
        h.inner_phase = kSearchNode;
        break;
      }

      case kSearchNode: {
        CR_OBS_HOT_COUNT("hop.ref.tree_reads");
        const SearchTree& tree = scheme_->level_tree(h.level, h.aux);
        const int local = tree.tree().local_id(at);
        CR_CHECK(local >= 0);
        const int child = tree.child_containing(local, h.dest);
        if (child >= 0) {
          const NodeId next_node = tree.tree().global_id(child);
          h.target = next_node;
          h.inner = underlying_->label(next_node);
          break;  // ride one virtual edge down
        }
        SearchTree::Data found_label = 0;
        if (tree.holds(local, h.dest, &found_label)) {
          h.tree_dfs = static_cast<NodeId>(found_label);  // remember l(v)
          h.exponent = 1;                                 // "found" flag
        } else {
          h.exponent = 0;
        }
        // Report back toward the root (Algorithm 2 line 10).
        const int parent = tree.tree().parent(local);
        const NodeId up = parent < 0 ? at : tree.tree().global_id(parent);
        h.target = up;
        h.inner = underlying_->label(up);
        h.inner_phase = kSearchBack;
        break;
      }

      case kSearchBack: {
        if (at != h.aux) {
          CR_OBS_HOT_COUNT("hop.ref.tree_reads");
          const SearchTree& tree = scheme_->level_tree(h.level, h.aux);
          const int local = tree.tree().local_id(at);
          CR_CHECK(local >= 0);
          const int parent = tree.tree().parent(local);
          CR_CHECK(parent >= 0);
          const NodeId up = tree.tree().global_id(parent);
          h.target = up;
          h.inner = underlying_->label(up);
          break;
        }
        // Back at the anchor u(level).
        if (h.exponent == 1) {
          h.inner = h.tree_dfs;  // the retrieved label l(v)
          h.inner_phase = kDeliver;
          break;
        }
        // Climb to u(level+1) — its label is stored along the netting tree.
        CR_CHECK_MSG(h.level < hierarchy.top_level(),
                     "top search ball covers the whole graph");
        const NodeId up = hierarchy.netting_parent(h.level, at);
        h.level = static_cast<std::int16_t>(h.level + 1);
        h.aux = up;
        h.inner = underlying_->label(up);
        h.inner_phase = kAtAnchor;
        break;
      }
    }
  }
  CR_CHECK_MSG(false, "phase machine did not settle");
  return decision;
}

}  // namespace compactroute

#pragma once
//
// Hop-by-hop adapter for the simple name-independent scheme (Algorithm 3 as
// a layered packet FSM).
//
// The header stacks two machines: the outer name-independent state (current
// zoom level, search anchor, search cursor, continuation) and the inner
// labeled-ride target — a destination label of the underlying hierarchical
// scheme. Every physical hop is one greedy ring step of the underlying
// scheme toward the inner target; when the ride arrives, the outer machine
// advances (descend the search tree, report back, climb the zooming
// sequence, or take the final leg). Header layout:
//   dest        — the original destination name id(v)
//   level / aux — zoom level i and anchor u(i)
//   target      — search-tree cursor (global id)
//   inner       — current ride target label
//   inner_phase — continuation after the ride arrives
//   tree_dfs    — the retrieved routing label l(v) (once found)
//
// By default both machines step against a HopArena (flat ring slab + packed
// search-tree bank); HopTables::kReference keeps the original container
// walks. Byte-identical routes either way (golden suite).
//
#include <memory>

#include "labeled/hierarchical_labeled.hpp"
#include "nameind/simple_nameind.hpp"
#include "runtime/hop_scheme.hpp"

namespace compactroute {

class SimpleNameIndependentHopScheme final : public HopScheme {
 public:
  /// `underlying` must be the same scheme the NI scheme was built over.
  SimpleNameIndependentHopScheme(const SimpleNameIndependentScheme& scheme,
                                 const HierarchicalLabeledScheme& underlying,
                                 HopTables tables = HopTables::kArena);
  /// Shared prebuilt arena (must carry the hier + simple slabs).
  SimpleNameIndependentHopScheme(const SimpleNameIndependentScheme& scheme,
                                 const HierarchicalLabeledScheme& underlying,
                                 std::shared_ptr<const HopArena> arena);

  std::string name() const override { return "hop/name-independent-simple"; }

  HopHeader make_header(NodeId src, std::uint64_t dest_key) const override;
  Decision step(NodeId at, const HopHeader& header) const override;
  bool step_inplace(NodeId at, HopHeader& header, NodeId* next) const override;
  TracePhase phase_of(const HopHeader& header) const override;

 private:
  // Continuations (inner_phase): what the outer machine does when the
  // current labeled ride arrives.
  enum Continuation : std::uint8_t {
    kAtAnchor = 0,    // arrived at u(level): start the local search
    kSearchNode = 1,  // arrived at the next search-tree node: descend
    kSearchBack = 2,  // returning toward the root of the search tree
    kDeliver = 3,     // final leg: arrived at the destination
  };

  Decision reference_step(NodeId at, const HopHeader& header) const;
  bool arena_step(NodeId at, HopHeader& header, NodeId* next) const;

  const SimpleNameIndependentScheme* scheme_;
  const HierarchicalLabeledScheme* underlying_;
  std::shared_ptr<const HopArena> arena_;
};

}  // namespace compactroute

#include "runtime/traffic.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/check.hpp"
#include "core/prng.hpp"

namespace compactroute {

bool traffic_shape_from_string(const std::string& name, TrafficShape* out) {
  if (name == "uniform") *out = TrafficShape::kUniform;
  else if (name == "zipf") *out = TrafficShape::kZipf;
  else if (name == "incast") *out = TrafficShape::kIncast;
  else if (name == "worst") *out = TrafficShape::kWorstPairs;
  else return false;
  return true;
}

const char* traffic_shape_name(TrafficShape shape) {
  switch (shape) {
    case TrafficShape::kUniform: return "uniform";
    case TrafficShape::kZipf: return "zipf";
    case TrafficShape::kIncast: return "incast";
    case TrafficShape::kWorstPairs: return "worst";
  }
  return "uniform";
}

namespace {

/// Uniform destination != src, with the classic shift trick so the draw
/// stays a single next_below — the exact loop `crtool server` used before
/// traffic shapes existed, kept verbatim so uniform streams (and the CI
/// digest gates built on them) are unchanged.
NodeId uniform_dest(Prng& prng, std::size_t n, NodeId src) {
  NodeId dest = static_cast<NodeId>(prng.next_below(n - 1));
  if (dest >= src) ++dest;
  return dest;
}

std::vector<ServerRequest> uniform_stream(std::size_t n, std::size_t count,
                                          std::uint64_t seed,
                                          std::span<const ServeScheme> mix) {
  Prng prng(seed);
  std::vector<ServerRequest> stream(count);
  for (std::size_t i = 0; i < count; ++i) {
    stream[i].scheme = mix[i % mix.size()];
    stream[i].src = static_cast<NodeId>(prng.next_below(n));
    stream[i].dest = uniform_dest(prng, n, stream[i].src);
  }
  return stream;
}

std::vector<ServerRequest> zipf_stream(std::size_t n, std::size_t count,
                                       std::uint64_t seed, double skew,
                                       std::span<const ServeScheme> mix) {
  Prng prng(seed);
  // Which node gets which popularity rank is itself seeded: a Fisher–Yates
  // permutation, so the hotspots are not always the low node ids (which the
  // schemes' tie-breaks could accidentally favor).
  std::vector<NodeId> by_rank(n);
  std::iota(by_rank.begin(), by_rank.end(), NodeId{0});
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const std::size_t j = i + prng.next_below(n - i);
    std::swap(by_rank[i], by_rank[j]);
  }
  // Cumulative Zipf weights; a uniform draw binary-searches its rank.
  std::vector<double> cum(n);
  double total = 0;
  for (std::size_t r = 0; r < n; ++r) {
    total += std::pow(static_cast<double>(r + 1), -skew);
    cum[r] = total;
  }
  std::vector<ServerRequest> stream(count);
  for (std::size_t i = 0; i < count; ++i) {
    stream[i].scheme = mix[i % mix.size()];
    const double u = prng.next_double() * total;
    const std::size_t rank = static_cast<std::size_t>(
        std::lower_bound(cum.begin(), cum.end(), u) - cum.begin());
    const NodeId dest = by_rank[std::min(rank, n - 1)];
    stream[i].dest = dest;
    NodeId src = static_cast<NodeId>(prng.next_below(n - 1));
    if (src >= dest) ++src;
    stream[i].src = src;
  }
  return stream;
}

std::vector<ServerRequest> incast_stream(std::size_t n, std::size_t count,
                                         std::uint64_t seed,
                                         std::span<const ServeScheme> mix) {
  Prng prng(seed);
  const NodeId dest = static_cast<NodeId>(prng.next_below(n));
  std::vector<ServerRequest> stream(count);
  for (std::size_t i = 0; i < count; ++i) {
    stream[i].scheme = mix[i % mix.size()];
    stream[i].dest = dest;
    NodeId src = static_cast<NodeId>(prng.next_below(n - 1));
    if (src >= dest) ++src;
    stream[i].src = src;
  }
  return stream;
}

}  // namespace

std::vector<ServerRequest> make_traffic(std::size_t n, std::size_t count,
                                        std::uint64_t seed,
                                        std::span<const ServeScheme> mix,
                                        const TrafficOptions& options) {
  CR_CHECK(n >= 2 && count >= 1);
  CR_CHECK_MSG(!mix.empty() || options.shape == TrafficShape::kWorstPairs,
               "traffic stream needs at least one scheme");
  switch (options.shape) {
    case TrafficShape::kUniform:
      return uniform_stream(n, count, seed, mix);
    case TrafficShape::kZipf:
      CR_CHECK_MSG(options.zipf_skew > 0, "zipf skew must be positive");
      return zipf_stream(n, count, seed, options.zipf_skew, mix);
    case TrafficShape::kIncast:
      return incast_stream(n, count, seed, mix);
    case TrafficShape::kWorstPairs: {
      CR_CHECK_MSG(!options.pairs.empty(), "worst-pair traffic with no mined pairs");
      std::vector<ServerRequest> stream(count);
      for (std::size_t i = 0; i < count; ++i) {
        stream[i] = options.pairs[i % options.pairs.size()];
      }
      return stream;
    }
  }
  CR_CHECK_MSG(false, "unknown traffic shape");
  return {};
}

}  // namespace compactroute

#include "labeled/hierarchical_labeled.hpp"

#include "core/bits.hpp"
#include "core/check.hpp"
#include "core/parallel.hpp"
#include "obs/metrics.hpp"
#include "obs/spans.hpp"

namespace compactroute {

HierarchicalLabeledScheme::HierarchicalLabeledScheme(const MetricSpace& metric,
                                                     const NetHierarchy& hierarchy,
                                                     double epsilon)
    : metric_(&metric), hierarchy_(&hierarchy), epsilon_(epsilon) {
  CR_OBS_SCOPED_TIMER("preprocess.labeled.hierarchical");
  CR_OBS_SPAN("preprocess.labeled.hierarchical", "construct");
  CR_CHECK_MSG(epsilon > 0 && epsilon <= 0.5, "scheme requires ε ∈ (0, 1/2]");
  const std::size_t n = metric.n();
  const int top = hierarchy.top_level();
  rings_.assign(n, std::vector<std::vector<RingEntry>>(top + 1));
  // Ring tables, inverted: instead of every node scanning every net point
  // (a distance probe per (u, x) pair — row-shaped work), each level fans
  // one batched ball query out over its net points and scatters the members
  // into their ring tables. A ball from x carries, per member u, exactly the
  // next hop u -> x (the member's parent in x's shortest-path tree), so no
  // further metric query is needed. The scatter runs serially in ascending
  // net order, preserving the ascending-x entry order rings have always had
  // and keeping the tables worker-count independent; per level the balls
  // B(x, 2^i/ε) overlap O(1) deep in a doubling metric, so this is O(n) per
  // level instead of O(n·|net|).
  for (int i = 0; i <= top; ++i) {
    const Weight reach = level_radius(i) / epsilon_;
    const std::vector<NodeId>& net = hierarchy.net(i);
    const std::vector<BallView> balls = metric.balls_oracle().balls(net, reach);
    for (std::size_t k = 0; k < net.size(); ++k) {
      const NodeId x = net[k];
      const BallView& ball = balls[k];
      for (std::size_t m = 0; m < ball.size(); ++m) {
        const NodeId u = ball.members[m];
        rings_[u][i].push_back(
            {x, hierarchy.range(i, x), u == x ? u : ball.parent[m]});
      }
    }
  }
}

std::pair<int, const HierarchicalLabeledScheme::RingEntry*>
HierarchicalLabeledScheme::minimal_hit(NodeId u, NodeId dest_label) const {
  for (int i = 0; i < static_cast<int>(rings_[u].size()); ++i) {
    for (const RingEntry& entry : rings_[u][i]) {
      if (entry.range.contains(dest_label)) return {i, &entry};
    }
  }
  CR_CHECK_MSG(false, "top ring always holds the hierarchy root");
  return {-1, nullptr};
}

RouteResult HierarchicalLabeledScheme::route(NodeId src,
                                             std::uint64_t dest_label) const {
  CR_CHECK(dest_label < metric_->n());
  const NodeId target_label = static_cast<NodeId>(dest_label);
  RouteResult result;
  result.path.push_back(src);

  NodeId pos = src;
  while (hierarchy_->leaf_label(pos) != target_label) {
    const auto [level, entry] = minimal_hit(pos, target_label);
    (void)level;
    CR_CHECK_MSG(entry->x != pos,
                 "ring hit at own position implies level-0 self hit, i.e. delivery");
    pos = entry->next_hop;
    result.path.push_back(pos);
    CR_CHECK_MSG(result.path.size() <= 8 * metric_->n(), "routing did not converge");
  }
  result.cost = path_cost(*metric_, result.path);
  result.delivered = true;
  return result;
}

std::size_t HierarchicalLabeledScheme::label_bits() const {
  return static_cast<std::size_t>(id_bits(metric_->n()));
}

std::size_t HierarchicalLabeledScheme::storage_bits(NodeId u) const {
  const std::size_t range_bits = 2 * label_bits();
  const std::size_t port =
      id_bits(std::max<std::size_t>(metric_->graph().degree(u), 2));
  std::size_t bits = 0;
  for (const auto& ring : rings_[u]) {
    bits += ring.size() * (range_bits + port);
  }
  return bits;
}

std::size_t HierarchicalLabeledScheme::header_bits() const {
  // The header carries only the destination label; all decisions are local.
  return label_bits();
}

}  // namespace compactroute

#pragma once
//
// Scale-free (1+ε)-stretch labeled routing (Theorem 1.2, Section 4).
//
// Same greedy ring descent as the hierarchical scheme, but a node keeps rings
// only for the level set R(u) = { i : ∃j, (ε/6) r_u(j) ≤ 2^i ≤ r_u(j) } of
// size O(log n · log(1/ε)) — the levels that "see" a change in local density.
// When the descent stalls (Algorithm 5 line 3: the level would rise, or the
// current ring target is already close), the packet hands off to the ball
// packing ℬ_j at the density scale j matching 2^{i_t} (r_{u_t}(j) ≤ 2^{i_t}
// < r_{u_t}(j+1)): it rides the Voronoi shortest-path tree T_c(j) to its
// region center c, retrieves the destination's *local* tree-routing label
// from the search tree T'(c, r_c(j)) (Lemma 4.5 guarantees v lives in this
// region and ball), and tree-routes to v. Total cost (1 + O(ε)) d(u, v)
// (Lemma 4.7); storage (1/ε)^{O(α)} log³ n bits per node — no log Δ anywhere.
//
// Pragmatic guards (documented in DESIGN.md): the top hierarchy level is
// always included in R(u) so line 2 never comes up empty, and if a handoff
// lookup misses (metric ties can bend Claim 4.6's inequalities), the packet
// escalates to coarser packings j+1, ..., log n; the top packing's search
// structures index every node, so escalation always terminates. Tests track
// that escalation stays rare and stretch stays within the bound.
//
#include <memory>
#include <string>
#include <vector>

#include "nets/ball_packing.hpp"
#include "nets/rnet.hpp"
#include "routing/scheme.hpp"
#include "search/search_tree.hpp"
#include "trees/compact_tree_router.hpp"
#include "trees/tree.hpp"

namespace compactroute {

class ScaleFreeLabeledScheme final : public LabeledScheme {
 public:
  /// Ablation knobs (defaults reproduce the paper's construction).
  struct Options {
    /// The window divisor in R(u) = { i : ∃j, (ε/W) r_u(j) <= 2^i <= r_u(j) }
    /// — the paper's Section 4.1 uses W = 6. Larger W keeps more levels
    /// (more storage, fewer handoffs); W -> 0 degenerates toward handing off
    /// immediately.
    double ring_window = 6.0;
    /// Use Definition 4.2 capped/Voronoi search trees (true, scale-free) or
    /// plain Definition 3.2 trees (false, depth grows with log Δ).
    bool capped_search_trees = true;
  };

  ScaleFreeLabeledScheme(const MetricSpace& metric, const NetHierarchy& hierarchy,
                         double epsilon);
  ScaleFreeLabeledScheme(const MetricSpace& metric, const NetHierarchy& hierarchy,
                         double epsilon, const Options& options);

  std::string name() const override { return "labeled/scale-free"; }
  std::uint64_t label(NodeId v) const override { return hierarchy_->leaf_label(v); }
  std::size_t label_bits() const override;
  RouteResult route(NodeId src, std::uint64_t dest_label) const override;
  std::size_t storage_bits(NodeId u) const override;
  std::size_t header_bits() const override;

  double epsilon() const { return epsilon_; }
  const NetHierarchy& hierarchy() const { return *hierarchy_; }

  /// Diagnostics for the Figure 2 trace bench and the Claim 4.6 tests.
  struct Trace {
    std::size_t walk_hops = 0;       // t — nodes u_0 .. u_t
    NodeId handoff_node = kInvalidNode;  // u_t
    int handoff_level = -1;          // i_t
    int packing_exponent = -1;       // j
    NodeId region_center = kInvalidNode;  // c
    Weight walk_cost = 0;
    Weight to_center_cost = 0;
    Weight search_cost = 0;
    Weight to_dest_cost = 0;
    int escalations = 0;             // times the j-fallback fired
    bool direct_delivery = false;    // delivered during the walk phase
  };

  RouteResult route_with_trace(NodeId src, std::uint64_t dest_label,
                               Trace* trace) const;

  /// R(u), for tests.
  const std::vector<int>& level_set(NodeId u) const { return level_set_[u]; }

  struct RingEntry {
    NodeId x = kInvalidNode;
    LeafRange range;
    NodeId next_hop = kInvalidNode;
    /// d(u, x) — a per-entry constant, stored so the walk threshold test
    /// (Algorithm 5 line 3) needs no metric at query time.
    Weight dist_x = 0;
  };

  /// Ring tables of node u; rings(u)[k] belongs to level level_set(u)[k].
  /// Exposed for the audit subsystem.
  const std::vector<std::vector<RingEntry>>& rings(NodeId u) const {
    return rings_[u];
  }

  struct Region {
    NodeId center = kInvalidNode;
    std::unique_ptr<RootedTree> tree;           // T_c(j): spans V(c, j)
    std::unique_ptr<CompactTreeRouter> router;  // optimal routing on T_c(j)
    std::unique_ptr<SearchTree> search;         // T'(c, r_c(j))
  };

  // The per-node local views the hop-by-hop runtime executes on.

  /// Minimal level in R(u) whose ring holds dest_label; never fails.
  std::pair<int, const RingEntry*> minimal_hit(NodeId u, NodeId dest_label) const;

  /// Largest j with r_u(j) <= radius.
  int density_exponent(NodeId u, Weight radius) const;

  /// r_u(j) — exposed so the serve-time arena can transpose the table.
  Weight size_radius(int exponent, NodeId u) const {
    return size_radius_[exponent][u];
  }

  /// Ball index of u's ℬ_j region (the regions(exponent) slot).
  int region_index(int exponent, NodeId u) const {
    return region_of_[exponent][u];
  }

  /// All Lemma 4.3 chain entries of one node: (target, next hop) sorted by
  /// target — the table chain_next() binary-searches.
  const std::vector<std::pair<NodeId, NodeId>>& chains(NodeId u) const {
    return chain_next_[u];
  }

  /// The ℬ_j Voronoi region containing u.
  const Region& region_of(int exponent, NodeId u) const {
    return regions_[exponent][region_of_[exponent][u]];
  }

  /// All regions at one packing exponent (the top level's centers are the
  /// final-fallback peers).
  const std::vector<Region>& regions(int exponent) const {
    return regions_[exponent];
  }

  int max_exponent() const { return max_exponent_; }

  /// Next hop from `at` along the canonical shortest path toward `target`
  /// (a Lemma 4.3 next-hop chain entry). Defined for every node on the
  /// canonical path of a search-tree edge and for the top-level
  /// center-to-center links — exactly the rides the hop runtime takes.
  NodeId chain_next(NodeId at, NodeId target) const;

 private:
  friend struct SnapshotAccess;
  ScaleFreeLabeledScheme() = default;

  void build_rings();
  /// Derives R(u) from u's size radii and sizes rings_[u] to match. Writes
  /// only the u-th slot of each table, so build_rings maps it over nodes on
  /// the parallel executor; the ring entries themselves are filled by the
  /// inverted per-level scatter in build_rings.
  void build_node_levels(NodeId u);
  void build_packings();

  const MetricSpace* metric_ = nullptr;
  const NetHierarchy* hierarchy_ = nullptr;
  double epsilon_ = 0;
  Options options_;

  std::vector<std::vector<int>> level_set_;  // R(u), ascending
  // rings_[u][k] corresponds to level_set_[u][k].
  std::vector<std::vector<std::vector<RingEntry>>> rings_;

  std::vector<std::vector<Weight>> size_radius_;  // [j][u] = r_u(j)
  int max_exponent_ = 0;                          // ⌊log n⌋
  std::vector<std::vector<Region>> regions_;      // [j][ball index]
  std::vector<std::vector<int>> region_of_;       // [j][u] -> ball index

  std::vector<std::size_t> chain_bits_;  // Lemma 4.3 next-hop chain storage
  // The chain entries themselves: chain_next_[u] holds (target, next hop)
  // pairs sorted by target, one per chain u participates in. This is the
  // materialization of the storage chain_bits_ accounts for — with it, the
  // hop runtime never consults the metric backend.
  std::vector<std::vector<std::pair<NodeId, NodeId>>> chain_next_;
  std::size_t max_region_label_bits_ = 0;
};

}  // namespace compactroute

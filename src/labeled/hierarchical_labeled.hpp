#pragma once
//
// Non-scale-free (1+ε)-stretch labeled routing (the effective underlying
// scheme of Lemma 3.1, [2, Theorem 4] — reimplemented from its spec).
//
// Every node u stores, for *every* level i ∈ [0, log Δ], its ring
// X_i(u) = B_u(2^i/ε) ∩ Y_i: per ring member x the DFS range Range(x, i) and
// the next hop on the canonical shortest path u -> x. The routing label of v
// is its ⌈log n⌉-bit DFS leaf number l(v) in the netting tree.
//
// Routing is greedy descent: at each node, find the minimal level i whose
// ring holds a point x with l(v) ∈ Range(x, i) — necessarily x = v(i), the
// level-i zooming ancestor of v — and step toward x. As the packet closes in,
// ever-lower ancestors of v enter the local rings, and the level can never
// increase along the walk (moving toward v(i) keeps v(i) in the ring), so the
// packet converges to v(0) = v with (1 + O(ε)) total cost.
//
// Space is Θ(log Δ · log n · (1/ε)^O(α)) per node — compact only when Δ is
// polynomial in n. The scale-free scheme of Theorem 1.2 removes the log Δ.
//
#include <string>
#include <vector>

#include "nets/rnet.hpp"
#include "routing/scheme.hpp"

namespace compactroute {

class HierarchicalLabeledScheme final : public LabeledScheme {
 public:
  /// epsilon must be in (0, 1/2] (Lemma 3.1's precondition; also what makes
  /// greedy descent monotone in the level).
  HierarchicalLabeledScheme(const MetricSpace& metric, const NetHierarchy& hierarchy,
                            double epsilon);

  std::string name() const override { return "labeled/hierarchical"; }
  std::uint64_t label(NodeId v) const override { return hierarchy_->leaf_label(v); }
  std::size_t label_bits() const override;
  RouteResult route(NodeId src, std::uint64_t dest_label) const override;
  std::size_t storage_bits(NodeId u) const override;
  std::size_t header_bits() const override;

  double epsilon() const { return epsilon_; }
  const NetHierarchy& hierarchy() const { return *hierarchy_; }

  struct RingEntry {
    NodeId x = kInvalidNode;
    LeafRange range;
    NodeId next_hop = kInvalidNode;
  };

  /// Ring tables of node u, one vector per level (X_i(u) with ranges and next
  /// hops) — exposed for serialization and diagnostics.
  const std::vector<std::vector<RingEntry>>& rings(NodeId u) const {
    return rings_[u];
  }

 private:
  friend struct SnapshotAccess;
  HierarchicalLabeledScheme() = default;

  /// Minimal level with a ring entry whose range holds `dest_label`;
  /// returns (level, entry pointer). Always succeeds (top ring holds the
  /// hierarchy root, whose range is all of V).
  std::pair<int, const RingEntry*> minimal_hit(NodeId u, NodeId dest_label) const;

  const MetricSpace* metric_ = nullptr;
  const NetHierarchy* hierarchy_ = nullptr;
  double epsilon_ = 0;
  std::vector<std::vector<std::vector<RingEntry>>> rings_;  // [node][level]
};

}  // namespace compactroute

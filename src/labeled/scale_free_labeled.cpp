#include "labeled/scale_free_labeled.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "core/bits.hpp"
#include "core/check.hpp"
#include "core/parallel.hpp"
#include "graph/dijkstra.hpp"
#include "obs/metrics.hpp"
#include "obs/spans.hpp"

namespace compactroute {

namespace {

// Per-thread membership stamp for the search-tree store filter: one bounded
// ball from the region center replaces a distance probe per cell member.
// Epoch-stamped so thousands of regions (parallel workers) pay O(|ball|)
// per region, not O(n) allocations.
struct MemberStamp {
  std::vector<std::uint32_t> stamp;
  std::uint32_t epoch = 0;

  void begin(std::size_t n) {
    if (stamp.size() < n) stamp.assign(n, 0);
    if (++epoch == 0) {
      std::fill(stamp.begin(), stamp.end(), 0);
      epoch = 1;
    }
  }
  void set(NodeId v) { stamp[v] = epoch; }
  bool test(NodeId v) const { return stamp[v] == epoch; }
};

MemberStamp& tls_member_stamp() {
  static thread_local MemberStamp stamp;
  return stamp;
}

}  // namespace

ScaleFreeLabeledScheme::ScaleFreeLabeledScheme(const MetricSpace& metric,
                                               const NetHierarchy& hierarchy,
                                               double epsilon)
    : ScaleFreeLabeledScheme(metric, hierarchy, epsilon, Options{}) {}

ScaleFreeLabeledScheme::ScaleFreeLabeledScheme(const MetricSpace& metric,
                                               const NetHierarchy& hierarchy,
                                               double epsilon,
                                               const Options& options)
    : metric_(&metric),
      hierarchy_(&hierarchy),
      epsilon_(epsilon),
      options_(options) {
  CR_OBS_SCOPED_TIMER("preprocess.labeled.scale_free");
  CR_OBS_SPAN("preprocess.labeled.scale_free", "construct");
  CR_CHECK_MSG(epsilon > 0 && epsilon <= 0.5, "scheme requires ε ∈ (0, 1/2]");
  CR_CHECK(options.ring_window > 0);
  max_exponent_ = max_size_exponent(metric.n());
  build_rings();
  build_packings();
}

void ScaleFreeLabeledScheme::build_rings() {
  const std::size_t n = metric_->n();
  const int top = hierarchy_->top_level();

  // Phase 1 — per-node density profile. All max_exponent_+1 size radii of a
  // node come out of ONE count-bounded run (the prefix radii of the same
  // settle order radius_of_count would walk), and R(u) is arithmetic on
  // them; both only write the u-th slot of each table, so the pass maps
  // over nodes on the parallel executor.
  size_radius_.assign(max_exponent_ + 1, std::vector<Weight>(n, 0));
  level_set_.assign(n, {});
  rings_.assign(n, {});
  std::vector<std::size_t> counts(max_exponent_ + 1);
  for (int j = 0; j <= max_exponent_; ++j) counts[j] = std::size_t{1} << j;
  parallel_for("labeled.sf.rings", n, 16,
               [&](std::size_t first, std::size_t last) {
                 for (NodeId u = static_cast<NodeId>(first); u < last; ++u) {
                   const std::vector<Weight> radii =
                       metric_->balls_oracle().size_radii(u, counts);
                   for (int j = 0; j <= max_exponent_; ++j) {
                     size_radius_[j][u] = radii[j];
                   }
                   build_node_levels(u);
                 }
               });

  // Phase 2 — the rings themselves, inverted: one batched ball per net
  // point and level instead of a distance probe per (node, net point) pair.
  // A member entry carries the distance and the next hop u -> x (the
  // member's parent in x's shortest-path tree) straight from the ball. The
  // scatter is serial in ascending net order, preserving the ascending-x
  // order within each ring; a node's ring exists only for levels in R(u),
  // located by binary search (level_set_ is ascending by construction).
  for (int i = 0; i <= top; ++i) {
    const Weight reach = level_radius(i) / epsilon_;
    const std::vector<NodeId>& net = hierarchy_->net(i);
    const std::vector<BallView> balls =
        metric_->balls_oracle().balls(net, reach);
    for (std::size_t b = 0; b < net.size(); ++b) {
      const NodeId x = net[b];
      const BallView& ball = balls[b];
      for (std::size_t m = 0; m < ball.size(); ++m) {
        const NodeId u = ball.members[m];
        const std::vector<int>& levels = level_set_[u];
        const auto it = std::lower_bound(levels.begin(), levels.end(), i);
        if (it == levels.end() || *it != i) continue;
        rings_[u][it - levels.begin()].push_back(
            {x, hierarchy_->range(i, x), u == x ? u : ball.parent[m],
             ball.dist[m]});
      }
    }
  }
}

void ScaleFreeLabeledScheme::build_node_levels(NodeId u) {
  const int top = hierarchy_->top_level();
  // R(u) = { i : ∃j, (ε/6) r_u(j) <= 2^i <= r_u(j) } — the levels around each
  // density scale of u — plus the top level (guard: line 2 of Algorithm 5
  // must always find a candidate; the top ring holds the hierarchy root).
  for (int i = 0; i <= top; ++i) {
    const Weight radius = level_radius(i);
    bool in_set = (i == top);
    for (int j = 1; !in_set && j <= max_exponent_; ++j) {
      const Weight rj = size_radius_[j][u];
      if (rj > 0 && (epsilon_ / options_.ring_window) * rj <= radius &&
          radius <= rj) {
        in_set = true;
      }
    }
    if (in_set) level_set_[u].push_back(i);
  }
  rings_[u].resize(level_set_[u].size());
}

void ScaleFreeLabeledScheme::build_packings() {
  const std::size_t n = metric_->n();
  const std::size_t log_n = id_bits(n);
  chain_bits_.assign(n, 0);
  chain_next_.assign(n, {});
  regions_.resize(max_exponent_ + 1);
  region_of_.assign(max_exponent_ + 1, std::vector<int>(n, -1));

  // Materializes one direction of a Lemma 4.3 next-hop chain: every node on
  // the canonical shortest path a -> b learns its next hop toward b. The hop
  // runtime rides these instead of querying the metric.
  const auto add_chain = [&](NodeId a, NodeId b) {
    if (a == b) return;
    const std::vector<NodeId> path = metric_->shortest_path(a, b);
    for (std::size_t s = 0; s + 1 < path.size(); ++s) {
      chain_next_[path[s]].emplace_back(b, path[s + 1]);
    }
  };

  for (int j = 0; j <= max_exponent_; ++j) {
    const BallPacking packing(*metric_, j);
    std::vector<NodeId> centers;
    centers.reserve(packing.balls().size());
    for (const PackedBall& ball : packing.balls()) centers.push_back(ball.center);
    const VoronoiDiagram voronoi = multi_source_dijkstra(metric_->csr(), centers);

    std::vector<std::vector<NodeId>> cells(packing.balls().size());
    std::vector<int> cell_of_center(n, -1);
    for (std::size_t b = 0; b < centers.size(); ++b) cell_of_center[centers[b]] = static_cast<int>(b);
    for (NodeId u = 0; u < n; ++u) {
      const int b = cell_of_center[voronoi.owner[u]];
      CR_CHECK(b >= 0);
      cells[b].push_back(u);
      region_of_[j][u] = b;
    }

    // Region structures (Voronoi tree, compact router, search tree) are
    // independent per packed ball — each iteration writes only regions_[j][b]
    // — so they build in parallel. The shared-state accounting (label-bit
    // max, Lemma 4.3 chain bits) runs serially afterwards: chain bits of
    // different balls overlap on shared shortest-path nodes.
    regions_[j].resize(packing.balls().size());
    parallel_for("labeled.sf.regions", packing.balls().size(), 1,
                 [&](std::size_t first, std::size_t last) {
      for (std::size_t b = first; b < last; ++b) {
        Region& region = regions_[j][b];
        region.center = centers[b];
        region.tree = std::make_unique<RootedTree>(
            cells[b], centers[b], [&](NodeId v) { return voronoi.parent[v]; },
            [&](NodeId v) { return metric_->dist(v, voronoi.parent[v]); });
        region.router = std::make_unique<CompactTreeRouter>(*region.tree);

        // T'(c, r_c(j)) over the packed ball, holding (global label -> local
        // label) for cell members within r_c(j+1) (all members at the top).
        const PackedBall& ball = packing.balls()[b];
        region.search = std::make_unique<SearchTree>(
            *metric_, ball.center, ball.radius, epsilon_,
            options_.capped_search_trees ? SearchTree::Variant::kCappedVoronoi
                                         : SearchTree::Variant::kBasic);
        const Weight reach = (j == max_exponent_)
                                 ? metric_->delta()
                                 : size_radius_[j + 1][ball.center];
        // One bounded ball from the center marks exactly the nodes with
        // d(center, v) <= reach — the same membership the per-node distance
        // probe tested, without a metric query per cell member.
        MemberStamp& within = tls_member_stamp();
        within.begin(n);
        for (NodeId v : metric_->ball(ball.center, reach)) within.set(v);
        std::vector<std::pair<SearchTree::Key, SearchTree::Data>> pairs;
        for (NodeId v : cells[b]) {
          if (within.test(v)) {
            pairs.emplace_back(
                hierarchy_->leaf_label(v),
                static_cast<SearchTree::Data>(region.tree->local_id(v)));
          }
        }
        region.search->store(std::move(pairs));
      }
    });

    for (std::size_t b = 0; b < packing.balls().size(); ++b) {
      const Region& region = regions_[j][b];
      max_region_label_bits_ =
          std::max(max_region_label_bits_, region.router->max_label_bits());

      // Lemma 4.3 accounting: net-level virtual edges ride next-hop chains —
      // every node on the canonical shortest path keeps one entry per
      // direction; tail edges ride local tree routing — both endpoints keep a
      // local label (~2 log n bits).
      const RootedTree& stree = region.search->tree();
      for (std::size_t local = 0; local < stree.size(); ++local) {
        const int parent = stree.parent(static_cast<int>(local));
        if (parent < 0) continue;
        const NodeId a = stree.global_id(static_cast<int>(local));
        const NodeId b2 = stree.global_id(parent);
        if (region.search->is_tail(static_cast<int>(local))) {
          chain_bits_[a] += 4 * log_n;
          chain_bits_[b2] += 4 * log_n;
        } else {
          for (NodeId w : metric_->shortest_path(a, b2)) chain_bits_[w] += 2 * log_n;
        }
        // The runtime rides every search-tree edge by iterated next hops, in
        // both directions (descent and report-back), so both chains exist
        // regardless of the tail/non-tail accounting split above.
        add_chain(a, b2);
        add_chain(b2, a);
      }
    }

    // Top-level fallback links: centers of ℬ_{log n} know next hops to each
    // other (a constant-size clique in practice; see header notes).
    if (j == max_exponent_ && centers.size() > 1) {
      for (NodeId a : centers) {
        for (NodeId b : centers) {
          if (a >= b) continue;
          for (NodeId w : metric_->shortest_path(a, b)) chain_bits_[w] += 2 * log_n;
          add_chain(a, b);
          add_chain(b, a);
        }
      }
    }
  }

  // Deterministic lookup order; duplicates from overlapping chains collapse
  // (the next hop toward a fixed target is unique per node).
  for (auto& chains : chain_next_) {
    std::sort(chains.begin(), chains.end());
    chains.erase(std::unique(chains.begin(), chains.end()), chains.end());
  }
}

NodeId ScaleFreeLabeledScheme::chain_next(NodeId at, NodeId target) const {
  const auto& chains = chain_next_[at];
  const auto it = std::lower_bound(chains.begin(), chains.end(),
                                   std::pair<NodeId, NodeId>{target, 0});
  CR_CHECK_MSG(it != chains.end() && it->first == target,
               "missing Lemma 4.3 chain entry");
  return it->second;
}

std::pair<int, const ScaleFreeLabeledScheme::RingEntry*>
ScaleFreeLabeledScheme::minimal_hit(NodeId u, NodeId dest_label) const {
  for (std::size_t k = 0; k < level_set_[u].size(); ++k) {
    for (const RingEntry& entry : rings_[u][k]) {
      if (entry.range.contains(dest_label)) return {level_set_[u][k], &entry};
    }
  }
  CR_CHECK_MSG(false, "top ring always holds the hierarchy root");
  return {-1, nullptr};
}

int ScaleFreeLabeledScheme::density_exponent(NodeId u, Weight radius) const {
  int j = 0;
  while (j + 1 <= max_exponent_ && size_radius_[j + 1][u] <= radius) ++j;
  return j;
}

RouteResult ScaleFreeLabeledScheme::route(NodeId src, std::uint64_t dest_label) const {
  return route_with_trace(src, dest_label, nullptr);
}

RouteResult ScaleFreeLabeledScheme::route_with_trace(NodeId src,
                                                     std::uint64_t dest_label,
                                                     Trace* trace) const {
  CR_CHECK(dest_label < metric_->n());
  const NodeId target_label = static_cast<NodeId>(dest_label);
  Trace local_trace;
  Trace& tr = trace ? *trace : local_trace;
  tr = Trace{};

  RouteResult result;
  result.path.push_back(src);
  const auto delivered = [&]() {
    result.cost = path_cost(*metric_, result.path);
    result.delivered = true;
    return result;
  };

  NodeId pos = src;
  if (hierarchy_->leaf_label(pos) == target_label) {
    tr.direct_delivery = true;
    return delivered();
  }

  // Walk phase (Algorithm 5 lines 1–6).
  int prev_level = std::numeric_limits<int>::max();
  int handoff_level = -1;
  for (;;) {
    const auto [level, entry] = minimal_hit(pos, target_label);
    const Weight threshold =
        level_radius(level) / (2 * epsilon_) - level_radius(level);
    // entry->x == pos means u_k = v(i_k): no walking can help, hand off.
    // (For ε < 1/2 the distance test already fails; at the ε = 1/2 boundary
    // the threshold degenerates to 0 and needs this explicit guard.)
    if (entry->x != pos && level <= prev_level &&
        metric_->dist(pos, entry->x) >= threshold) {
      pos = entry->next_hop;
      result.path.push_back(pos);
      prev_level = level;
      ++tr.walk_hops;
      CR_CHECK_MSG(result.path.size() <= 8 * metric_->n(), "walk did not converge");
      if (hierarchy_->leaf_label(pos) == target_label) {
        tr.direct_delivery = true;
        tr.walk_cost = path_cost(*metric_, result.path);
        return delivered();
      }
      continue;
    }
    handoff_level = level;
    break;
  }
  tr.handoff_node = pos;
  tr.handoff_level = handoff_level;
  tr.walk_cost = path_cost(*metric_, result.path);

  // Handoff phase (lines 7–10), with the documented escalation guard.
  // Per the routing model (Section 1), every relay first checks whether the
  // packet has reached its destination — so any segment that happens to pass
  // through v ends the route there.
  const NodeId target_node = hierarchy_->node_of_label(target_label);
  const auto append_and_check = [&](NodeId node) {
    result.path.push_back(node);
    return node == target_node;
  };
  const auto append_locals = [&](const Region& region,
                                 const std::vector<int>& locals) {
    for (std::size_t s = 1; s < locals.size(); ++s) {
      if (append_and_check(region.tree->global_id(locals[s]))) return true;
    }
    return false;
  };

  int j = density_exponent(pos, level_radius(handoff_level));
  tr.packing_exponent = j;
  SearchTree::LookupScratch scratch;
  SearchTree::LookupResult lookup;
  for (; j <= max_exponent_; ++j) {
    const Region& region = regions_[j][region_of_[j][pos]];
    if (tr.region_center == kInvalidNode) tr.region_center = region.center;

    const Weight before_center = path_cost(*metric_, result.path);
    const bool hit_on_way_to_center = append_locals(
        region, region.router->route(region.tree->local_id(pos),
                                     region.router->label(region.tree->root_local())));
    if (j == tr.packing_exponent) {
      tr.to_center_cost = path_cost(*metric_, result.path) - before_center;
    }
    if (hit_on_way_to_center) return delivered();

    const Weight before_search = path_cost(*metric_, result.path);
    region.search->lookup(target_label, scratch, &lookup);
    bool hit_in_search = false;
    for (std::size_t s = 1; s < lookup.trail.size() && !hit_in_search; ++s) {
      hit_in_search = append_and_check(lookup.trail[s]);
    }
    if (j == tr.packing_exponent) {
      tr.search_cost = path_cost(*metric_, result.path) - before_search;
    }
    if (hit_in_search) return delivered();

    if (lookup.found) {
      const Weight before_dest = path_cost(*metric_, result.path);
      append_locals(region,
                    region.router->route(
                        region.tree->root_local(),
                        region.router->label(static_cast<int>(lookup.data))));
      tr.to_dest_cost = path_cost(*metric_, result.path) - before_dest;
      CR_CHECK(result.path.back() == target_node);
      return delivered();
    }
    ++tr.escalations;
    pos = region.center;
  }

  // Final fallback: try the other top-level cells via center-to-center links.
  for (const Region& region : regions_[max_exponent_]) {
    if (region.center == pos) continue;
    for (NodeId w : metric_->shortest_path(pos, region.center)) {
      if (w != pos && append_and_check(w)) return delivered();
    }
    pos = region.center;
    region.search->lookup(target_label, scratch, &lookup);
    for (std::size_t s = 1; s < lookup.trail.size(); ++s) {
      if (append_and_check(lookup.trail[s])) return delivered();
    }
    ++tr.escalations;
    if (lookup.found) {
      append_locals(region,
                    region.router->route(
                        region.tree->root_local(),
                        region.router->label(static_cast<int>(lookup.data))));
      return delivered();
    }
  }
  CR_CHECK_MSG(false, "top-level cells jointly index every node");
  return result;
}

std::size_t ScaleFreeLabeledScheme::label_bits() const {
  return static_cast<std::size_t>(id_bits(metric_->n()));
}

std::size_t ScaleFreeLabeledScheme::storage_bits(NodeId u) const {
  const std::size_t log_n = label_bits();
  const std::size_t level_bits = id_bits(hierarchy_->top_level() + 2);
  const std::size_t port =
      id_bits(std::max<std::size_t>(metric_->graph().degree(u), 2));

  std::size_t bits = log_n;  // own label
  // Rings: entries plus a run-length encoding of R(u).
  std::size_t runs = 0;
  for (std::size_t k = 0; k < level_set_[u].size(); ++k) {
    if (k == 0 || level_set_[u][k] != level_set_[u][k - 1] + 1) ++runs;
    bits += rings_[u][k].size() * (2 * log_n + port);
  }
  bits += runs * 2 * level_bits;

  // Per packing level: the local label of the own region's center plus the
  // region router's table.
  for (int j = 0; j <= max_exponent_; ++j) {
    const Region& region = regions_[j][region_of_[j][u]];
    bits += log_n;
    bits += region.router->table_bits(region.tree->local_id(u));
    // Search-tree membership: the packed balls of ℬ_j are disjoint, so u is
    // in at most one search tree per level.
    for (const Region& candidate : regions_[j]) {
      const int local = candidate.search->tree().local_id(u);
      if (local < 0) continue;
      bits += candidate.search->node_bits(local, log_n,
                                          candidate.router->max_label_bits(),
                                          /*link_bits=*/0);
    }
  }
  bits += chain_bits_[u];
  return bits;
}

std::size_t ScaleFreeLabeledScheme::header_bits() const {
  // Destination label, previous level, packing exponent, phase tag, and the
  // retrieved local tree label during the handoff phase.
  return label_bits() + id_bits(hierarchy_->top_level() + 2) +
         id_bits(max_exponent_ + 2) + 2 + max_region_label_bits_;
}

}  // namespace compactroute

#pragma once
//
// Scale-free name-independent routing (Theorem 1.1, Section 3.3) — the
// SODA 2007 scheme.
//
// Same zoom-and-search skeleton as the simple scheme (Algorithm 3), but the
// per-level search structures no longer multiply with log Δ:
//
//  * every packed ball B ∈ ℬ_j (center c) carries a search tree T(c, r_c(j))
//    holding the (name -> label) pairs of B_c(r_c(j+2)) — 4 pairs per node;
//  * a net ball B_u(2^i/ε) keeps its own search tree only if no packed ball
//    subsumes it, i.e. unless some B ∈ ℬ_j satisfies
//    B ⊆ B_u(2^i(1/ε+1)) and B_u(2^i/ε) ⊆ B_c(r_c(j+2)) (both tested by the
//    triangle-inequality form used in the paper's proofs). Subsumed levels
//    i ∈ S(u) store just a link to the center of H(u, i); Claim 3.9 bounds
//    the distinct links by 4 log n.
//
// Search (Algorithm 4) either queries the own tree or detours to the packed
// ball's center, queries there, and returns. The cost per level stays
// ~2^{i+1}(1/ε + 1), so the Lemma 3.4 stretch argument still gives 9 + O(ε),
// while storage drops to (1/ε)^{O(α)} log³ n bits per node (Lemma 3.8).
//
#include <memory>
#include <string>
#include <vector>

#include "nets/ball_packing.hpp"
#include "nets/rnet.hpp"
#include "routing/naming.hpp"
#include "routing/scheme.hpp"
#include "search/search_tree.hpp"

namespace compactroute {

class ScaleFreeNameIndependentScheme final : public NameIndependentScheme {
 public:
  /// Ablation knobs (defaults reproduce the paper's construction).
  struct Options {
    /// When false, every net ball B_u(2^i/ε) keeps its own search tree and
    /// no H(u, i) subsumption links are created — isolating the storage
    /// contribution of the ball-packing delegation (set 𝒜 vs all balls).
    bool subsume_with_packings = true;
  };

  /// `underlying` should be the scale-free labeled scheme (Theorem 1.2) for
  /// the headline result, but any LabeledScheme on the same metric works.
  ScaleFreeNameIndependentScheme(const MetricSpace& metric,
                                 const NetHierarchy& hierarchy, const Naming& naming,
                                 const LabeledScheme& underlying, double epsilon);
  ScaleFreeNameIndependentScheme(const MetricSpace& metric,
                                 const NetHierarchy& hierarchy, const Naming& naming,
                                 const LabeledScheme& underlying, double epsilon,
                                 const Options& options);

  std::string name() const override { return "name-independent/scale-free"; }
  RouteResult route(NodeId src, Name dest_name) const override;
  std::size_t storage_bits(NodeId u) const override;
  std::size_t header_bits() const override;

  double epsilon() const { return epsilon_; }

  struct Trace {
    int found_level = -1;
    int delegated_searches = 0;  // levels answered by a packed-ball tree
    Weight climb_cost = 0;
    Weight search_cost = 0;
    Weight final_cost = 0;
  };

  RouteResult route_with_trace(NodeId src, Name dest_name, Trace* trace) const;

  /// Number of levels of u's memberships that were subsumed by packed balls
  /// (|S(u)| restricted to u's net memberships); for tests.
  std::size_t subsumed_levels(NodeId u) const;

  /// Number of *distinct* packed balls H(u, i) over u's subsumed levels —
  /// Claim 3.9 bounds this by 4 log n.
  std::size_t distinct_delegations(NodeId u) const;

  /// Number of search trees (type 1 and type 2) whose node set contains v —
  /// Lemma 3.5 bounds this by (1/ε)^O(α) log n.
  std::size_t trees_containing(NodeId v) const;

  // ------- local views for the hop-by-hop runtime -------

  /// The search structure answering Search(·, anchor, level) (Algorithm 4):
  /// either the anchor's own tree or the delegated packed-ball tree; also
  /// outputs the tree's root node (anchor itself or the ball center).
  const SearchTree& search_structure(int level, NodeId anchor,
                                     NodeId* root) const;

  const NetHierarchy& hierarchy() const { return *hierarchy_; }
  const Naming& naming() const { return *naming_; }

  /// The packing ℬ_j actually deployed by the scheme and the exponent range
  /// j ∈ [0, max_exponent()] — exposed so the audit subsystem certifies the
  /// live structures rather than rebuilding its own.
  int max_exponent() const { return max_exponent_; }
  const BallPacking& packing(int j) const { return *packings_[j]; }

 private:
  struct Membership {
    /// Own search tree for B_u(2^i/ε); null when subsumed (i ∈ S(u)).
    std::unique_ptr<SearchTree> own_tree;
    int h_exponent = -1;  // j of H(u, i)
    int h_ball = -1;      // ball index within ℬ_j
  };

  friend struct SnapshotAccess;
  ScaleFreeNameIndependentScheme() = default;

  NodeId ride_underlying(Path& path, NodeId from, NodeId to) const;
  const Membership& membership(int level, NodeId u) const;

  const MetricSpace* metric_ = nullptr;
  const NetHierarchy* hierarchy_ = nullptr;
  const Naming* naming_ = nullptr;
  const LabeledScheme* underlying_ = nullptr;
  double epsilon_ = 0;
  int max_exponent_ = 0;

  std::vector<std::unique_ptr<BallPacking>> packings_;  // [j]
  // ball_trees_[j][b]: the type-1 search tree of packed ball b of ℬ_j.
  std::vector<std::vector<std::unique_ptr<SearchTree>>> ball_trees_;
  // memberships_[i][k]: info for the k-th point of Y_i.
  std::vector<std::vector<Membership>> memberships_;
};

}  // namespace compactroute

#include "nameind/scale_free_nameind.hpp"

#include <algorithm>
#include <cstdint>
#include <set>

#include "core/bits.hpp"
#include "core/check.hpp"
#include "core/parallel.hpp"
#include "obs/metrics.hpp"
#include "obs/spans.hpp"

namespace compactroute {

namespace {

/// r_c(j) with the paper's implicit clamp: exponents above log n denote the
/// whole graph.
Weight clamped_size_radius(const MetricSpace& metric, NodeId c, int exponent) {
  if (exponent > max_size_exponent(metric.n())) return metric.delta();
  return size_radius(metric, c, exponent);
}

// Per-thread stamped distance table: one bounded ball from a net point
// replaces a distance probe per (net point, packed ball) pair in the Type-2
// membership scan. A slot's distance is meaningful only while its stamp
// matches the epoch; centers beyond the ball radius simply never get
// stamped, which is exactly the "too far to qualify" outcome.
struct DistStamp {
  std::vector<std::uint32_t> stamp;
  std::uint32_t epoch = 0;
  std::vector<Weight> dist;

  void begin(std::size_t n) {
    if (stamp.size() < n) {
      stamp.assign(n, 0);
      dist.resize(n);
    }
    if (++epoch == 0) {
      std::fill(stamp.begin(), stamp.end(), 0);
      epoch = 1;
    }
  }
  void set(NodeId v, Weight d) {
    stamp[v] = epoch;
    dist[v] = d;
  }
  bool has(NodeId v) const { return stamp[v] == epoch; }
};

DistStamp& tls_dist_stamp() {
  static thread_local DistStamp stamp;
  return stamp;
}

}  // namespace

ScaleFreeNameIndependentScheme::ScaleFreeNameIndependentScheme(
    const MetricSpace& metric, const NetHierarchy& hierarchy, const Naming& naming,
    const LabeledScheme& underlying, double epsilon)
    : ScaleFreeNameIndependentScheme(metric, hierarchy, naming, underlying, epsilon,
                                     Options{}) {}

ScaleFreeNameIndependentScheme::ScaleFreeNameIndependentScheme(
    const MetricSpace& metric, const NetHierarchy& hierarchy, const Naming& naming,
    const LabeledScheme& underlying, double epsilon, const Options& options)
    : metric_(&metric),
      hierarchy_(&hierarchy),
      naming_(&naming),
      underlying_(&underlying),
      epsilon_(epsilon) {
  CR_OBS_SCOPED_TIMER("preprocess.nameind.scale_free");
  CR_OBS_SPAN("preprocess.nameind.scale_free", "construct");
  CR_CHECK_MSG(epsilon > 0 && epsilon < 1, "Theorem 1.1 requires ε ∈ (0, 1)");
  max_exponent_ = max_size_exponent(metric.n());

  // Type-1 structures: one search tree per packed ball, holding the pairs of
  // the 4x-size ball B_c(r_c(j+2)). The packing itself is sequential greedy;
  // the per-ball trees are independent and build in parallel into their own
  // slots.
  packings_.resize(max_exponent_ + 1);
  ball_trees_.resize(max_exponent_ + 1);
  // reach[j][b] = r_c(j+2) of ball b's center — shared by the Type-1 store
  // below and every Type-2 coverage test, so it's computed once per ball
  // rather than once per (net point, ball) pair.
  std::vector<std::vector<Weight>> reach(max_exponent_ + 1);
  for (int j = 0; j <= max_exponent_; ++j) {
    packings_[j] = std::make_unique<BallPacking>(metric, j);
    const std::vector<PackedBall>& balls = packings_[j]->balls();
    ball_trees_[j].resize(balls.size());
    reach[j].resize(balls.size());
    parallel_for("nameind.sf.ball_trees", balls.size(), 1,
                 [&](std::size_t first, std::size_t last) {
      for (std::size_t b = first; b < last; ++b) {
        const PackedBall& ball = balls[b];
        auto tree = std::make_unique<SearchTree>(
            metric, ball.center, ball.radius, epsilon_,
            SearchTree::Variant::kBasic);
        reach[j][b] = clamped_size_radius(metric, ball.center, j + 2);
        std::vector<std::pair<SearchTree::Key, SearchTree::Data>> pairs;
        for (NodeId v : metric.ball(ball.center, reach[j][b])) {
          pairs.emplace_back(naming.name_of(v), underlying.label(v));
        }
        tree->store(std::move(pairs));
        ball_trees_[j][b] = std::move(tree);
      }
    });
  }

  // Type-2 structures: per net membership, either an own tree or the H(u, i)
  // link into the packing hierarchy (minimal j, then minimal d(u, c)). Each
  // membership writes only its own slot, so net points map in parallel.
  const int top = hierarchy.top_level();
  memberships_.resize(top + 1);
  for (int i = 0; i <= top; ++i) {
    const std::vector<NodeId>& net = hierarchy.net(i);
    memberships_[i].resize(net.size());
    const Weight own_radius = level_radius(i) / epsilon_;
    const Weight outer_radius = level_radius(i) * (1 / epsilon_ + 1);
    parallel_for("nameind.sf.memberships", net.size(), 4,
                 [&](std::size_t first, std::size_t last) {
      for (std::size_t k = first; k < last; ++k) {
        const NodeId u = net[k];
        Membership& info = memberships_[i][k];
        // Both qualification tests below need d(u, c) <= outer_radius (ball
        // radii are non-negative), so one bounded ball from u delivers every
        // center distance the scan can use; an unstamped center is too far
        // and fails ball_inside outright.
        DistStamp& near = tls_dist_stamp();
        if (options.subsume_with_packings) {
          near.begin(metric.n());
          const BallView view = metric.balls_oracle().ball(u, outer_radius);
          for (std::size_t m = 0; m < view.size(); ++m) {
            near.set(view.members[m], view.dist[m]);
          }
        }
        for (int j = 0; options.subsume_with_packings && j <= max_exponent_ &&
                        info.h_ball < 0;
             ++j) {
          Weight best_dist = 0;
          for (std::size_t b = 0; b < packings_[j]->balls().size(); ++b) {
            const PackedBall& ball = packings_[j]->balls()[b];
            if (!near.has(ball.center)) continue;
            const Weight duc = near.dist[ball.center];
            const bool ball_inside = duc + ball.radius <= outer_radius;
            const bool we_are_covered = duc + own_radius <= reach[j][b];
            if (!ball_inside || !we_are_covered) continue;
            if (info.h_ball < 0 || duc < best_dist) {
              info.h_exponent = j;
              info.h_ball = static_cast<int>(b);
              best_dist = duc;
            }
          }
        }
        if (info.h_ball < 0) {
          info.own_tree = std::make_unique<SearchTree>(
              metric, u, own_radius, epsilon_, SearchTree::Variant::kBasic);
          std::vector<std::pair<SearchTree::Key, SearchTree::Data>> pairs;
          for (NodeId v : metric.ball(u, own_radius)) {
            pairs.emplace_back(naming.name_of(v), underlying.label(v));
          }
          info.own_tree->store(std::move(pairs));
        }
      }
    });
  }
}

const ScaleFreeNameIndependentScheme::Membership&
ScaleFreeNameIndependentScheme::membership(int level, NodeId u) const {
  const std::vector<NodeId>& net = hierarchy_->net(level);
  const auto it = std::lower_bound(net.begin(), net.end(), u);
  CR_CHECK(it != net.end() && *it == u);
  return memberships_[level][it - net.begin()];
}

NodeId ScaleFreeNameIndependentScheme::ride_underlying(Path& path, NodeId from,
                                                       NodeId to) const {
  if (from == to) return to;
  const RouteResult leg = underlying_->route(from, underlying_->label(to));
  CR_CHECK(leg.delivered && leg.path.front() == from && leg.path.back() == to);
  path.insert(path.end(), leg.path.begin() + 1, leg.path.end());
  return to;
}

RouteResult ScaleFreeNameIndependentScheme::route(NodeId src, Name dest_name) const {
  return route_with_trace(src, dest_name, nullptr);
}

RouteResult ScaleFreeNameIndependentScheme::route_with_trace(NodeId src,
                                                             Name dest_name,
                                                             Trace* trace) const {
  Trace local_trace;
  Trace& tr = trace ? *trace : local_trace;
  tr = Trace{};

  RouteResult result;
  result.path.push_back(src);
  if (naming_->name_of(src) == dest_name) {
    result.delivered = true;
    return result;
  }

  NodeId pos = src;
  SearchTree::LookupScratch scratch;
  SearchTree::LookupResult lookup;
  for (int i = 0; i <= hierarchy_->top_level(); ++i) {
    const NodeId anchor = hierarchy_->zoom(i, src);
    const Weight before_climb = path_cost(*metric_, result.path);
    pos = ride_underlying(result.path, pos, anchor);
    tr.climb_cost += path_cost(*metric_, result.path) - before_climb;

    // Search(id, u(i), i) — Algorithm 4.
    const Membership& info = membership(i, anchor);
    const SearchTree* tree = info.own_tree.get();
    NodeId tree_root = anchor;
    if (!tree) {
      ++tr.delegated_searches;
      tree = ball_trees_[info.h_exponent][info.h_ball].get();
      tree_root = packings_[info.h_exponent]->balls()[info.h_ball].center;
    }

    const Weight before_search = path_cost(*metric_, result.path);
    pos = ride_underlying(result.path, pos, tree_root);  // "go to c from u"
    tree->lookup(dest_name, scratch, &lookup);
    for (std::size_t s = 1; s < lookup.trail.size(); ++s) {
      pos = ride_underlying(result.path, pos, lookup.trail[s]);
    }
    pos = ride_underlying(result.path, pos, anchor);  // "go back from c to u"
    tr.search_cost += path_cost(*metric_, result.path) - before_search;

    if (lookup.found) {
      tr.found_level = i;
      const Weight before_final = path_cost(*metric_, result.path);
      const RouteResult leg = underlying_->route(anchor, lookup.data);
      CR_CHECK(leg.delivered && leg.path.front() == anchor);
      result.path.insert(result.path.end(), leg.path.begin() + 1, leg.path.end());
      tr.final_cost = path_cost(*metric_, result.path) - before_final;
      CR_CHECK(naming_->name_of(result.path.back()) == dest_name);
      result.cost = path_cost(*metric_, result.path);
      result.delivered = true;
      return result;
    }
  }
  CR_CHECK_MSG(false, "the top-level search ball covers the whole graph");
  return result;
}

const SearchTree& ScaleFreeNameIndependentScheme::search_structure(
    int level, NodeId anchor, NodeId* root) const {
  const Membership& info = membership(level, anchor);
  if (info.own_tree) {
    if (root) *root = anchor;
    return *info.own_tree;
  }
  if (root) *root = packings_[info.h_exponent]->balls()[info.h_ball].center;
  return *ball_trees_[info.h_exponent][info.h_ball];
}

std::size_t ScaleFreeNameIndependentScheme::distinct_delegations(NodeId u) const {
  std::set<std::pair<int, int>> balls;
  for (int i = 0; i <= hierarchy_->top_level(); ++i) {
    if (!hierarchy_->in_net(i, u)) continue;
    const Membership& info = membership(i, u);
    if (!info.own_tree) balls.emplace(info.h_exponent, info.h_ball);
  }
  return balls.size();
}

std::size_t ScaleFreeNameIndependentScheme::trees_containing(NodeId v) const {
  std::size_t count = 0;
  for (int j = 0; j <= max_exponent_; ++j) {
    for (const auto& tree : ball_trees_[j]) {
      if (tree->tree().contains(v)) ++count;
    }
  }
  for (const auto& level : memberships_) {
    for (const Membership& info : level) {
      if (info.own_tree && info.own_tree->tree().contains(v)) ++count;
    }
  }
  return count;
}

std::size_t ScaleFreeNameIndependentScheme::subsumed_levels(NodeId u) const {
  std::size_t count = 0;
  for (int i = 0; i <= hierarchy_->top_level(); ++i) {
    if (!hierarchy_->in_net(i, u)) continue;
    if (!membership(i, u).own_tree) ++count;
  }
  return count;
}

std::size_t ScaleFreeNameIndependentScheme::storage_bits(NodeId u) const {
  const std::size_t name_bits = id_bits(metric_->n());
  const std::size_t label = underlying_->label_bits();
  const std::size_t level_bits = id_bits(hierarchy_->top_level() + 2);

  std::size_t bits = underlying_->storage_bits(u);
  bits += label;  // netting-tree parent label

  // H(u, i) links, charged per run of consecutive levels sharing one ball.
  int prev_exponent = -2, prev_ball = -2;
  for (int i = 0; i <= hierarchy_->top_level(); ++i) {
    if (!hierarchy_->in_net(i, u)) continue;
    const Membership& info = membership(i, u);
    if (!info.own_tree) {
      if (info.h_exponent != prev_exponent || info.h_ball != prev_ball) {
        bits += 2 * level_bits + label + id_bits(max_exponent_ + 2);
      }
      prev_exponent = info.h_exponent;
      prev_ball = info.h_ball;
    } else {
      prev_exponent = prev_ball = -2;
    }
  }

  // Type-1 trees: at most one per exponent (packed balls are disjoint).
  for (int j = 0; j <= max_exponent_; ++j) {
    const int b = packings_[j]->ball_containing(u);
    if (b < 0) continue;
    const int local = ball_trees_[j][b]->tree().local_id(u);
    CR_CHECK(local >= 0);
    bits += ball_trees_[j][b]->node_bits(local, name_bits, label, label);
  }

  // Type-2 trees that contain u (Lemma 3.5 bounds their number).
  for (int i = 0; i <= hierarchy_->top_level(); ++i) {
    for (const Membership& info : memberships_[i]) {
      if (!info.own_tree) continue;
      const int local = info.own_tree->tree().local_id(u);
      if (local < 0) continue;
      bits += info.own_tree->node_bits(local, name_bits, label, label);
    }
  }
  return bits;
}

std::size_t ScaleFreeNameIndependentScheme::header_bits() const {
  return id_bits(metric_->n()) + id_bits(hierarchy_->top_level() + 2) +
         underlying_->header_bits();
}

}  // namespace compactroute

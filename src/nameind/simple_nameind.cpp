#include "nameind/simple_nameind.hpp"

#include <algorithm>

#include "core/bits.hpp"
#include "core/check.hpp"
#include "core/parallel.hpp"
#include "obs/metrics.hpp"
#include "obs/spans.hpp"

namespace compactroute {

SimpleNameIndependentScheme::SimpleNameIndependentScheme(
    const MetricSpace& metric, const NetHierarchy& hierarchy, const Naming& naming,
    const LabeledScheme& underlying, double epsilon)
    : metric_(&metric),
      hierarchy_(&hierarchy),
      naming_(&naming),
      underlying_(&underlying),
      epsilon_(epsilon) {
  trees_.resize(hierarchy.top_level() + 1);
  build_levels(metric, hierarchy, naming, underlying, epsilon,
               [&](int level, std::vector<std::unique_ptr<SearchTree>> trees) {
                 trees_[level] = std::move(trees);
               });
}

void SimpleNameIndependentScheme::build_levels(
    const MetricSpace& metric, const NetHierarchy& hierarchy,
    const Naming& naming, const LabeledScheme& underlying, double epsilon,
    const std::function<void(int, std::vector<std::unique_ptr<SearchTree>>)>&
        sink) {
  CR_OBS_SCOPED_TIMER("preprocess.nameind.simple");
  CR_OBS_SPAN("preprocess.nameind.simple", "construct");
  CR_CHECK_MSG(epsilon > 0 && epsilon < 1, "Theorem 1.4 requires ε ∈ (0, 1)");
  const int top = hierarchy.top_level();
  for (int i = 0; i <= top; ++i) {
    const std::vector<NodeId>& net = hierarchy.net(i);
    const Weight radius = level_radius(i) / epsilon;
    // Each net point's search tree T(u, 2^i/ε) is built independently from
    // const inputs (metric, naming, underlying labels) into its own slot, so
    // the per-level loop maps over net points on the parallel executor.
    std::vector<std::unique_ptr<SearchTree>> trees(net.size());
    parallel_for("nameind.simple.trees", net.size(), 1,
                 [&](std::size_t first, std::size_t last) {
                   for (std::size_t k = first; k < last; ++k) {
                     auto tree = std::make_unique<SearchTree>(
                         metric, net[k], radius, epsilon,
                         SearchTree::Variant::kBasic);
                     std::vector<std::pair<SearchTree::Key, SearchTree::Data>>
                         pairs;
                     for (NodeId v : metric.ball(net[k], radius)) {
                       pairs.emplace_back(naming.name_of(v),
                                          underlying.label(v));
                     }
                     tree->store(std::move(pairs));
                     trees[k] = std::move(tree);
                   }
                 });
    sink(i, std::move(trees));
  }
}

const SearchTree& SimpleNameIndependentScheme::level_tree(int level,
                                                          NodeId anchor) const {
  const std::vector<NodeId>& net = hierarchy_->net(level);
  const auto it = std::lower_bound(net.begin(), net.end(), anchor);
  CR_CHECK(it != net.end() && *it == anchor);
  return *trees_[level][it - net.begin()];
}

NodeId SimpleNameIndependentScheme::ride_underlying(Path& path, NodeId from,
                                                    NodeId to) const {
  if (from == to) return to;
  const RouteResult leg = underlying_->route(from, underlying_->label(to));
  CR_CHECK(leg.delivered && leg.path.front() == from && leg.path.back() == to);
  path.insert(path.end(), leg.path.begin() + 1, leg.path.end());
  return to;
}

RouteResult SimpleNameIndependentScheme::route(NodeId src, Name dest_name) const {
  return route_with_trace(src, dest_name, nullptr);
}

RouteResult SimpleNameIndependentScheme::route_with_trace(NodeId src, Name dest_name,
                                                          Trace* trace) const {
  Trace local_trace;
  Trace& tr = trace ? *trace : local_trace;
  tr = Trace{};

  RouteResult result;
  result.path.push_back(src);
  if (naming_->name_of(src) == dest_name) {
    result.delivered = true;
    return result;
  }

  NodeId pos = src;
  SearchTree::LookupScratch scratch;
  SearchTree::LookupResult lookup;
  for (int i = 0; i <= hierarchy_->top_level(); ++i) {
    // Climb to u(i) — the netting-tree parent chain, whose labels are stored
    // along the chain itself (Section 3.1.2).
    const NodeId anchor = hierarchy_->zoom(i, src);
    const Weight before_climb = path_cost(*metric_, result.path);
    pos = ride_underlying(result.path, pos, anchor);
    tr.climb_cost += path_cost(*metric_, result.path) - before_climb;

    // Local search (Algorithm 3 line 4): traverse the trail edge by edge via
    // the underlying labeled scheme (endpoints hold each other's labels).
    const std::vector<NodeId>& net = hierarchy_->net(i);
    const auto it = std::lower_bound(net.begin(), net.end(), anchor);
    CR_CHECK(it != net.end() && *it == anchor);
    const SearchTree& tree = *trees_[i][it - net.begin()];

    const Weight before_search = path_cost(*metric_, result.path);
    tree.lookup(dest_name, scratch, &lookup);
    for (std::size_t s = 1; s < lookup.trail.size(); ++s) {
      pos = ride_underlying(result.path, pos, lookup.trail[s]);
    }
    tr.search_cost += path_cost(*metric_, result.path) - before_search;
    CR_CHECK(pos == anchor);  // the trail reports back to the root

    if (lookup.found) {
      tr.found_level = i;
      const Weight before_final = path_cost(*metric_, result.path);
      const RouteResult leg = underlying_->route(anchor, lookup.data);
      CR_CHECK(leg.delivered && leg.path.front() == anchor);
      result.path.insert(result.path.end(), leg.path.begin() + 1, leg.path.end());
      tr.final_cost = path_cost(*metric_, result.path) - before_final;
      CR_CHECK(naming_->name_of(result.path.back()) == dest_name);
      result.cost = path_cost(*metric_, result.path);
      result.delivered = true;
      return result;
    }
  }
  CR_CHECK_MSG(false, "the top ball B_root(2^L/ε) covers the whole graph");
  return result;
}

std::size_t SimpleNameIndependentScheme::storage_bits(NodeId u) const {
  const std::size_t name_bits = id_bits(metric_->n());
  const std::size_t label = underlying_->label_bits();

  std::size_t bits = underlying_->storage_bits(u);
  bits += label;  // netting-tree parent label (at most one; Section 3.1.2)
  for (int i = 0; i <= hierarchy_->top_level(); ++i) {
    for (const auto& tree : trees_[i]) {
      const int local = tree->tree().local_id(u);
      if (local < 0) continue;
      bits += tree->node_bits(local, name_bits, label, label);
    }
  }
  return bits;
}

std::size_t SimpleNameIndependentScheme::header_bits() const {
  // Destination name, current level, and the underlying scheme's header.
  return id_bits(metric_->n()) + id_bits(hierarchy_->top_level() + 2) +
         underlying_->header_bits();
}

}  // namespace compactroute

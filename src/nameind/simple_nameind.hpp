#pragma once
//
// Simple name-independent routing (Theorem 1.4, Sections 3.1–3.2) — the
// PODC 2006 scheme.
//
// For every net point u ∈ Y_i the ball B_u(2^i/ε) carries a search tree
// storing the (original name -> routing label) pairs of all its nodes. A
// source climbs its own zooming sequence u(0), u(1), ...; at each u(i) it
// runs SearchTree(id(v), T(u(i), 2^i/ε)) (Algorithm 3). The first level j at
// which the search succeeds satisfies d(u(j-1), v) > 2^{j-1}/ε, which prices
// the whole climb-and-search prologue at O(ε)·d(u, v) relative to the final
// leg, giving stretch 9 + O(ε) (Lemma 3.4).
//
// Every movement — climbing to u(i+1), walking a search-tree trail edge,
// and the final leg — is an actual route of the underlying labeled scheme,
// charged at its true cost.
//
// Storage is (1/ε)^{O(α)} log Δ log n bits per node: compact only for
// polynomial Δ. The scale-free variant (Theorem 1.1) removes the log Δ.
//
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "nets/rnet.hpp"
#include "routing/naming.hpp"
#include "routing/scheme.hpp"
#include "search/search_tree.hpp"

namespace compactroute {

class SimpleNameIndependentScheme final : public NameIndependentScheme {
 public:
  /// `underlying` must outlive this scheme (typically a
  /// HierarchicalLabeledScheme built on the same hierarchy).
  SimpleNameIndependentScheme(const MetricSpace& metric, const NetHierarchy& hierarchy,
                              const Naming& naming, const LabeledScheme& underlying,
                              double epsilon);

  /// Streaming construction: builds the per-level search-tree tables in
  /// level order and hands each completed level to `sink` (ownership
  /// included), so a build-and-serialize pipeline — e.g.
  /// SnapshotStreamWriter::add_simple_level — holds at most one level of
  /// trees in memory. The constructor is exactly this with a sink that keeps
  /// every level.
  static void build_levels(
      const MetricSpace& metric, const NetHierarchy& hierarchy,
      const Naming& naming, const LabeledScheme& underlying, double epsilon,
      const std::function<void(int, std::vector<std::unique_ptr<SearchTree>>)>&
          sink);

  std::string name() const override { return "name-independent/simple"; }
  RouteResult route(NodeId src, Name dest_name) const override;
  std::size_t storage_bits(NodeId u) const override;
  std::size_t header_bits() const override;

  double epsilon() const { return epsilon_; }

  /// Diagnostics for the Figure 1 trace bench.
  struct Trace {
    int found_level = -1;   // the level j where the label was found
    Weight climb_cost = 0;  // zooming-sequence movement
    Weight search_cost = 0; // all search-tree traversals
    Weight final_cost = 0;  // u(j) -> v
  };

  RouteResult route_with_trace(NodeId src, Name dest_name, Trace* trace) const;

  /// The search tree of ball B_anchor(2^level / ε); anchor must be in
  /// Y_level. Exposed for the hop-by-hop runtime and diagnostics.
  const SearchTree& level_tree(int level, NodeId anchor) const;

  const NetHierarchy& hierarchy() const { return *hierarchy_; }
  const Naming& naming() const { return *naming_; }

 private:
  friend struct SnapshotAccess;
  SimpleNameIndependentScheme() = default;

  /// Appends `underlying.route(from, label(to))`'s walk (sans its first
  /// node) to path; returns the node reached (== to).
  NodeId ride_underlying(Path& path, NodeId from, NodeId to) const;

  const MetricSpace* metric_ = nullptr;
  const NetHierarchy* hierarchy_ = nullptr;
  const Naming* naming_ = nullptr;
  const LabeledScheme* underlying_ = nullptr;
  double epsilon_ = 0;

  // trees_[i][k] = search tree of the k-th point of Y_i (net order).
  std::vector<std::vector<std::unique_ptr<SearchTree>>> trees_;
};

}  // namespace compactroute

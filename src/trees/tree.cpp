#include "trees/tree.hpp"

#include <algorithm>

#include "core/check.hpp"

namespace compactroute {

void RootedTree::init_nodes(const std::vector<NodeId>& nodes, NodeId root) {
  CR_CHECK(!nodes.empty());
  global_ = nodes;
  local_.reserve(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const bool inserted = local_.emplace(nodes[i], static_cast<int>(i)).second;
    CR_CHECK_MSG(inserted, "duplicate node in tree");
  }
  const auto it = local_.find(root);
  CR_CHECK_MSG(it != local_.end(), "root must be among the tree nodes");
  root_ = it->second;
}

void RootedTree::finish(const std::vector<NodeId>& parents,
                        const std::vector<Weight>& weights) {
  const std::size_t m = global_.size();
  parent_.assign(m, -1);
  parent_weight_.assign(m, 0);
  children_.assign(m, {});
  for (std::size_t i = 0; i < m; ++i) {
    if (static_cast<int>(i) == root_) continue;
    const int p = local_id(parents[i]);
    CR_CHECK_MSG(p >= 0, "parent must be a tree node");
    CR_CHECK_MSG(weights[i] >= 0, "edge weights must be non-negative");
    parent_[i] = p;
    parent_weight_[i] = weights[i];
    children_[p].push_back(static_cast<int>(i));
  }
  for (auto& kids : children_) {
    std::sort(kids.begin(), kids.end(),
              [&](int a, int b) { return global_[a] < global_[b]; });
  }

  // Subtree sizes and depths via one topological pass (children after
  // parents). Detects cycles: every node must be reachable from the root.
  std::vector<int> order;
  order.reserve(m);
  order.push_back(root_);
  for (std::size_t head = 0; head < order.size(); ++head) {
    for (int child : children_[order[head]]) order.push_back(child);
  }
  CR_CHECK_MSG(order.size() == m, "parent pointers do not form a tree rooted at root");

  subtree_size_.assign(m, 1);
  depth_.assign(m, 0);
  for (int local : order) {
    if (local != root_) depth_[local] = depth_[parent_[local]] + parent_weight_[local];
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if (*it != root_) subtree_size_[parent_[*it]] += subtree_size_[*it];
  }
}

int RootedTree::local_id(NodeId global) const {
  const auto it = local_.find(global);
  return it == local_.end() ? -1 : it->second;
}

Weight RootedTree::height() const {
  Weight h = 0;
  for (Weight d : depth_) h = std::max(h, d);
  return h;
}

bool RootedTree::validate(std::string* why) const {
  const auto fail = [why](const std::string& message) {
    if (why != nullptr) *why = message;
    return false;
  };
  const std::size_t m = global_.size();
  if (root_ < 0 || static_cast<std::size_t>(root_) >= m) {
    return fail("root index out of range");
  }
  if (parent_[root_] != -1) return fail("root has a parent");
  for (std::size_t i = 0; i < m; ++i) {
    const int local = static_cast<int>(i);
    if (local_id(global_[i]) != local) {
      return fail("global/local id maps disagree at node " +
                  std::to_string(global_[i]));
    }
    const int p = parent_[i];
    if (local != root_) {
      if (p < 0 || static_cast<std::size_t>(p) >= m || p == local) {
        return fail("node " + std::to_string(global_[i]) +
                    " has an invalid parent index");
      }
      const auto& siblings = children_[p];
      if (std::find(siblings.begin(), siblings.end(), local) == siblings.end()) {
        return fail("node " + std::to_string(global_[i]) +
                    " missing from its parent's child list");
      }
      if (parent_weight_[i] < 0) {
        return fail("negative edge weight above node " +
                    std::to_string(global_[i]));
      }
    }
    for (int child : children_[i]) {
      if (child < 0 || static_cast<std::size_t>(child) >= m ||
          parent_[child] != local) {
        return fail("child list of node " + std::to_string(global_[i]) +
                    " disagrees with parent pointers");
      }
    }
  }
  // Reachability plus recomputed subtree sizes and depths.
  std::vector<int> order;
  order.reserve(m);
  order.push_back(root_);
  for (std::size_t head = 0; head < order.size() && order.size() <= m; ++head) {
    for (int child : children_[order[head]]) order.push_back(child);
  }
  if (order.size() != m) return fail("not every node is reachable from the root");
  std::vector<std::size_t> sizes(m, 1);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if (*it != root_) sizes[parent_[*it]] += sizes[*it];
  }
  for (std::size_t i = 0; i < m; ++i) {
    if (sizes[i] != subtree_size_[i]) {
      return fail("cached subtree size wrong at node " +
                  std::to_string(global_[i]));
    }
    const Weight expected =
        static_cast<int>(i) == root_ ? 0 : depth_[parent_[i]] + parent_weight_[i];
    if (depth_[i] != expected) {
      return fail("cached depth wrong at node " + std::to_string(global_[i]));
    }
  }
  return true;
}

}  // namespace compactroute

#pragma once
//
// Interval (DFS) tree routing.
//
// The classic optimal labeled routing scheme on trees: label every node with
// its DFS index, store at each node its DFS interval and its children's
// intervals, and route by interval containment. Routing is exactly along the
// unique tree path. Labels are one ⌈log m⌉-bit integer; per-node tables are
// O(deg · log m) bits — compact except at very high-degree nodes, which is
// what CompactTreeRouter (heavy-path scheme, Lemma 4.1) addresses.
//
#include <cstddef>
#include <vector>

#include "core/types.hpp"
#include "trees/tree.hpp"

namespace compactroute {

class IntervalTreeRouter {
 public:
  explicit IntervalTreeRouter(const RootedTree& tree);

  const RootedTree& tree() const { return *tree_; }

  /// Label of a node, by local index: its DFS-in number.
  NodeId label(int local) const { return dfs_in_[local]; }

  /// Local index of the labeled node.
  int node_of_label(NodeId label) const { return node_of_label_[label]; }

  /// One routing step: the local index of the next node on the path from
  /// `local` toward the node labeled `dest`; `local` itself if delivered.
  int step(int local, NodeId dest) const;

  /// Full path (local indices) from src to the node labeled dest, inclusive.
  std::vector<int> route(int src_local, NodeId dest) const;

  /// Routing-table bits at a node: own interval + child intervals + ports.
  std::size_t table_bits(int local) const;

  /// Bits per label: ceil(log2 m).
  std::size_t label_bits() const;

 private:
  const RootedTree* tree_;
  std::vector<NodeId> dfs_in_;
  std::vector<NodeId> dfs_out_;  // inclusive: max DFS-in within the subtree
  std::vector<int> node_of_label_;
};

}  // namespace compactroute

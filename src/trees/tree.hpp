#pragma once
//
// Rooted weighted trees.
//
// Trees appear in three roles in the paper: the netting tree (Section 2), the
// Voronoi shortest-path trees T_c(j) (Section 4.1), and the virtual search
// trees (Definitions 3.2 / 4.2). This class gives them one representation:
// local indices 0..m-1 with a mapping to global node ids, parent pointers,
// edge weights, and the derived orders (children, subtree sizes) that tree
// routing needs. Tree edges may be real graph edges (Voronoi trees) or
// virtual edges whose weight is a metric distance (search trees).
//
#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/types.hpp"

namespace compactroute {

class RootedTree {
 public:
  /// Builds a tree over `nodes` (global ids; must include `root`). parent_of
  /// maps each non-root global node to its parent's global id (which must be
  /// in `nodes`); weight_of gives the corresponding edge weight.
  template <typename ParentFn, typename WeightFn>
  RootedTree(const std::vector<NodeId>& nodes, NodeId root, ParentFn&& parent_of,
             WeightFn&& weight_of) {
    init_nodes(nodes, root);
    std::vector<NodeId> parents(nodes.size(), kInvalidNode);
    std::vector<Weight> weights(nodes.size(), 0);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i] == root) continue;
      parents[i] = parent_of(nodes[i]);
      weights[i] = weight_of(nodes[i]);
    }
    finish(parents, weights);
  }

  std::size_t size() const { return global_.size(); }
  int root_local() const { return root_; }
  NodeId root_global() const { return global_[root_]; }

  NodeId global_id(int local) const { return global_[local]; }
  /// Local index of a global id; -1 if not in the tree.
  int local_id(NodeId global) const;
  bool contains(NodeId global) const { return local_id(global) >= 0; }

  /// Parent local index; -1 for the root.
  int parent(int local) const { return parent_[local]; }
  Weight parent_edge_weight(int local) const { return parent_weight_[local]; }

  /// Children in increasing global-id order.
  const std::vector<int>& children(int local) const { return children_[local]; }

  std::size_t subtree_size(int local) const { return subtree_size_[local]; }

  /// Sum of edge weights from the root to `local`.
  Weight depth(int local) const { return depth_[local]; }

  /// Maximum depth over all nodes (the height used in Eqn (3)).
  Weight height() const;

  /// Structural self-check used by the audit subsystem: exactly one root,
  /// parent/children mutually consistent, every node reachable from the
  /// root, and subtree sizes / depths matching a recomputation. Returns
  /// false and describes the first defect in `why` (when non-null).
  bool validate(std::string* why = nullptr) const;

 private:
  void init_nodes(const std::vector<NodeId>& nodes, NodeId root);
  void finish(const std::vector<NodeId>& parents, const std::vector<Weight>& weights);

  int root_ = -1;
  std::vector<NodeId> global_;
  std::unordered_map<NodeId, int> local_;
  std::vector<int> parent_;
  std::vector<Weight> parent_weight_;
  std::vector<std::vector<int>> children_;
  std::vector<std::size_t> subtree_size_;
  std::vector<Weight> depth_;
};

}  // namespace compactroute

#pragma once
//
// Compact labeled tree routing (Lemma 4.1, after Fraigniaud–Gavoille and
// Thorup–Zwick).
//
// Heavy-path decomposition: at every node the child with the largest subtree
// is "heavy" and is visited first in DFS. A node's label is its DFS index
// plus, for each *light* edge (a -> b) on its root path, the pair
// (DFS index of a, port of b at a). Since each light descent at least halves
// the subtree, there are at most ⌊log2 m⌋ such entries, so labels carry
// O(log² m) bits. Per-node tables shrink to O(log m) bits: own interval, the
// heavy child's interval, and the parent port — a node never stores all its
// children's intervals (that information travels in the destination label).
//
// Routing is exactly optimal on the tree: ascend while the destination is
// outside the subtree, then descend via the heavy interval or the label's
// light-edge entry.
//
#include <cstddef>
#include <vector>

#include "core/types.hpp"
#include "trees/tree.hpp"

namespace compactroute {

/// Destination label for compact tree routing.
struct TreeLabel {
  NodeId dfs = 0;
  /// (DFS index of light ancestor, port of the child to take there).
  std::vector<std::pair<NodeId, NodeId>> light_edges;
};

class CompactTreeRouter {
 public:
  explicit CompactTreeRouter(const RootedTree& tree);

  const RootedTree& tree() const { return *tree_; }

  const TreeLabel& label(int local) const { return labels_[local]; }

  /// Local index of the node with DFS index `dfs`.
  int node_of_dfs(NodeId dfs) const { return node_of_dfs_[dfs]; }

  /// DFS interval [dfs_in, dfs_out] of a node's subtree and its heavy child
  /// (-1 for leaves) — the per-node routing table rows, exposed so the
  /// serve-time arena can flatten them.
  NodeId dfs_in(int local) const { return dfs_in_[local]; }
  NodeId dfs_out(int local) const { return dfs_out_[local]; }
  int heavy_child(int local) const { return heavy_child_[local]; }

  /// One routing step toward `dest`; returns `local` itself when delivered.
  int step(int local, const TreeLabel& dest) const;

  /// Full path (local indices) from src to dest, inclusive.
  std::vector<int> route(int src_local, const TreeLabel& dest) const;

  /// Per-node table bits: own interval + heavy-child interval + parent port.
  std::size_t table_bits(int local) const;

  /// Encoded size of a node's label in bits.
  std::size_t label_bits(int local) const;

  /// Maximum label size over all nodes.
  std::size_t max_label_bits() const;

 private:
  const RootedTree* tree_;
  std::vector<NodeId> dfs_in_;
  std::vector<NodeId> dfs_out_;
  std::vector<int> node_of_dfs_;
  std::vector<int> heavy_child_;  // -1 for leaves
  std::vector<TreeLabel> labels_;
};

}  // namespace compactroute

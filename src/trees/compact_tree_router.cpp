#include "trees/compact_tree_router.hpp"

#include <algorithm>

#include "core/bits.hpp"
#include "core/check.hpp"

namespace compactroute {

CompactTreeRouter::CompactTreeRouter(const RootedTree& tree) : tree_(&tree) {
  const std::size_t m = tree.size();
  dfs_in_.assign(m, 0);
  dfs_out_.assign(m, 0);
  node_of_dfs_.assign(m, -1);
  heavy_child_.assign(m, -1);
  labels_.assign(m, {});

  // Heavy child: largest subtree, ties toward the smaller global id (the
  // children list is already sorted by global id, so the first maximum wins).
  std::vector<std::vector<int>> visit_order(m);
  for (std::size_t u = 0; u < m; ++u) {
    const auto& kids = tree.children(static_cast<int>(u));
    if (kids.empty()) continue;
    int heavy = kids[0];
    for (int child : kids) {
      if (tree.subtree_size(child) > tree.subtree_size(heavy)) heavy = child;
    }
    heavy_child_[u] = heavy;
    visit_order[u].push_back(heavy);
    for (int child : kids) {
      if (child != heavy) visit_order[u].push_back(child);
    }
  }

  // DFS with the heavy child first; build labels along the way. `trail` is
  // the light-edge list accumulated on the current root path.
  NodeId next = 0;
  std::vector<std::pair<NodeId, NodeId>> trail;
  std::vector<std::pair<int, std::size_t>> stack;  // (node, next visit index)
  const auto enter = [&](int node) {
    dfs_in_[node] = next;
    node_of_dfs_[next] = node;
    labels_[node].dfs = next;
    labels_[node].light_edges = trail;
    ++next;
    stack.emplace_back(node, 0);
  };
  enter(tree.root_local());
  while (!stack.empty()) {
    auto& [node, visit_index] = stack.back();
    const auto& order = visit_order[node];
    if (visit_index < order.size()) {
      const int child = order[visit_index++];
      if (child != heavy_child_[node]) {
        // Port of `child` at `node`: its index in the children list.
        const auto& kids = tree.children(node);
        const auto it = std::find(kids.begin(), kids.end(), child);
        trail.emplace_back(dfs_in_[node],
                           static_cast<NodeId>(it - kids.begin()));
        enter(child);
      } else {
        enter(child);
      }
    } else {
      dfs_out_[node] = next - 1;
      stack.pop_back();
      // If `node` was entered through a light edge, its trail entry ends here.
      if (!stack.empty()) {
        const int p = stack.back().first;
        if (heavy_child_[p] != node) {
          CR_CHECK(!trail.empty() && trail.back().first == dfs_in_[p]);
          trail.pop_back();
        }
      }
    }
  }
  CR_CHECK(next == m);
}

int CompactTreeRouter::step(int local, const TreeLabel& dest) const {
  if (dest.dfs == dfs_in_[local]) return local;
  if (dest.dfs < dfs_in_[local] || dest.dfs > dfs_out_[local]) {
    const int up = tree_->parent(local);
    CR_CHECK_MSG(up >= 0, "destination outside the tree");
    return up;
  }
  const int heavy = heavy_child_[local];
  if (heavy >= 0 && dest.dfs >= dfs_in_[heavy] && dest.dfs <= dfs_out_[heavy]) {
    return heavy;
  }
  for (const auto& [anchor, port] : dest.light_edges) {
    if (anchor == dfs_in_[local]) {
      const auto& kids = tree_->children(local);
      CR_CHECK(port < kids.size());
      return kids[port];
    }
  }
  CR_CHECK_MSG(false, "label must record the light edge at every light ancestor");
  return -1;
}

std::vector<int> CompactTreeRouter::route(int src_local, const TreeLabel& dest) const {
  std::vector<int> path = {src_local};
  while (dfs_in_[path.back()] != dest.dfs) {
    path.push_back(step(path.back(), dest));
    CR_CHECK(path.size() <= 2 * tree_->size());
  }
  return path;
}

std::size_t CompactTreeRouter::table_bits(int local) const {
  const std::size_t label = id_bits(tree_->size());
  const std::size_t port =
      id_bits(std::max<std::size_t>(tree_->children(local).size() + 1, 2));
  // dfs_in + dfs_out + heavy-child interval + parent port.
  return 4 * label + port;
}

std::size_t CompactTreeRouter::label_bits(int local) const {
  const std::size_t base = id_bits(tree_->size());
  std::size_t bits = base;
  for (const auto& [anchor, port] : labels_[local].light_edges) {
    (void)port;
    const int anchor_node = node_of_dfs_[anchor];
    bits += base + id_bits(std::max<std::size_t>(
                       tree_->children(anchor_node).size(), 2));
  }
  return bits;
}

std::size_t CompactTreeRouter::max_label_bits() const {
  std::size_t best = 0;
  for (std::size_t u = 0; u < tree_->size(); ++u) {
    best = std::max(best, label_bits(static_cast<int>(u)));
  }
  return best;
}

}  // namespace compactroute

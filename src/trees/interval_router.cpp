#include "trees/interval_router.hpp"

#include "core/bits.hpp"
#include "core/check.hpp"

namespace compactroute {

IntervalTreeRouter::IntervalTreeRouter(const RootedTree& tree) : tree_(&tree) {
  const std::size_t m = tree.size();
  dfs_in_.assign(m, 0);
  dfs_out_.assign(m, 0);
  node_of_label_.assign(m, -1);

  // Iterative DFS, children in their stored (global-id) order.
  NodeId next = 0;
  std::vector<std::pair<int, std::size_t>> stack;  // (node, next child index)
  stack.emplace_back(tree.root_local(), 0);
  dfs_in_[tree.root_local()] = next;
  node_of_label_[next] = tree.root_local();
  ++next;
  while (!stack.empty()) {
    auto& [node, child_index] = stack.back();
    const auto& kids = tree.children(node);
    if (child_index < kids.size()) {
      const int child = kids[child_index++];
      dfs_in_[child] = next;
      node_of_label_[next] = child;
      ++next;
      stack.emplace_back(child, 0);
    } else {
      dfs_out_[node] = next - 1;
      stack.pop_back();
    }
  }
  CR_CHECK(next == m);
}

int IntervalTreeRouter::step(int local, NodeId dest) const {
  CR_CHECK(dest < tree_->size());
  if (dfs_in_[local] == dest) return local;
  if (dest < dfs_in_[local] || dest > dfs_out_[local]) {
    const int up = tree_->parent(local);
    CR_CHECK_MSG(up >= 0, "destination label outside the tree");
    return up;
  }
  for (int child : tree_->children(local)) {
    if (dest >= dfs_in_[child] && dest <= dfs_out_[child]) return child;
  }
  CR_CHECK_MSG(false, "DFS intervals of children must cover the subtree");
  return -1;
}

std::vector<int> IntervalTreeRouter::route(int src_local, NodeId dest) const {
  std::vector<int> path = {src_local};
  while (dfs_in_[path.back()] != dest) {
    path.push_back(step(path.back(), dest));
    CR_CHECK(path.size() <= 2 * tree_->size());
  }
  return path;
}

std::size_t IntervalTreeRouter::table_bits(int local) const {
  const std::size_t label = label_bits();
  // Own interval (2 labels), parent port (1 id), and per child: interval +
  // port.
  return 2 * label + label + tree_->children(local).size() * 3 * label;
}

std::size_t IntervalTreeRouter::label_bits() const {
  return static_cast<std::size_t>(id_bits(tree_->size()));
}

}  // namespace compactroute

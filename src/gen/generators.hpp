#pragma once
//
// Synthetic network generators.
//
// The paper evaluates no real traces (it is a theory paper); its target class
// is "networks of low doubling dimension". These generators produce that
// class with the features the paper's analysis stresses:
//   * grids and geometric graphs  — classic constant-doubling metrics;
//   * grids with holes            — doubling but *not* growth-bounded
//                                   (the paper's motivating distinction);
//   * trees, paths, stars         — degenerate metrics / worst cases;
//   * exponential spider          — normalized diameter Δ exponential in the
//                                   size, exercising scale-freeness;
//   * cluster hierarchies         — highly non-uniform density (dense and
//                                   sparse regions side by side, the case
//                                   that defeats plain grid hierarchies).
//
// Beyond the paper's own class, the Internet-like families (DESIGN.md §13)
// probe what happens when the doubling assumption *breaks*: power-law
// preferential attachment, hyperbolic disks, and a two-tier AS-style core/
// stub topology — the graph classes of Krioukov–Fall–Yang and
// Krioukov–claffy–Brady (PAPERS.md).
//
// Every generator is seed-deterministic and returns a connected graph.
//
#include <cstddef>
#include <cstdint>
#include <functional>

#include "graph/graph.hpp"

namespace compactroute {

/// width x height unit-weight grid.
Graph make_grid(std::size_t width, std::size_t height);

/// Grid with `num_holes` random rectangular holes of size up to
/// max_hole_side; returns the largest connected component, relabeled densely.
Graph make_grid_with_holes(std::size_t width, std::size_t height,
                           std::size_t num_holes, std::size_t max_hole_side,
                           std::uint64_t seed);

/// n points uniform in [0,1]^dim (dim in {1,2,3}), each joined to its k
/// nearest neighbors with Euclidean edge weights; components are then stitched
/// by their closest point pairs so the result is connected.
Graph make_random_geometric(std::size_t n, int dim, std::size_t k,
                            std::uint64_t seed);

Graph make_path(std::size_t n, Weight edge_weight = 1);
Graph make_cycle(std::size_t n, Weight edge_weight = 1);
Graph make_star(std::size_t leaves, Weight edge_weight = 1);

/// Random tree: node i attaches to a uniformly random earlier node with
/// weight uniform in [1, max_weight].
Graph make_random_tree(std::size_t n, Weight max_weight, std::uint64_t seed);

/// Complete `branching`-ary tree with `depth` levels of edges, unit weights.
Graph make_balanced_tree(std::size_t branching, std::size_t depth);

/// Star of `arms` paths with `nodes_per_arm` nodes each; edges on arm a weigh
/// growth^a, so Δ grows exponentially with the number of arms. The canonical
/// stress test for scale-free storage bounds.
Graph make_exponential_spider(std::size_t arms, std::size_t nodes_per_arm,
                              Weight growth = 2);

/// Recursive cluster hierarchy: `fanout` subclusters per level, `levels`
/// levels; intra-cluster distances shrink geometrically by `spread` per
/// level. Doubling, with density varying by orders of magnitude.
Graph make_cluster_hierarchy(std::size_t levels, std::size_t fanout, Weight spread,
                             std::uint64_t seed);

/// width x height torus (grid with wrap-around edges), unit weights. Still
/// doubling; no boundary effects.
Graph make_torus(std::size_t width, std::size_t height);

/// `num_cliques` cliques of `clique_size` nodes (intra-clique weight 1)
/// arranged on a ring with bridges of weight `bridge`. Dense pockets on a
/// one-dimensional backbone — doubling, not growth-bounded.
Graph make_ring_of_cliques(std::size_t num_cliques, std::size_t clique_size,
                           Weight bridge);

/// Connects `graph` by repeatedly adding the closest cross-component pair
/// under `distance` (which must be symmetric and positive). Ties are broken
/// explicitly by the lexicographically smallest (u, v) pair among the
/// minimum-distance candidates, so the result never depends on scan order.
void stitch_components(Graph& graph,
                       const std::function<Weight(NodeId, NodeId)>& distance);

/// Barabási–Albert-style preferential attachment: nodes arrive one at a
/// time and attach `edges_per_node` distinct edges to endpoints sampled
/// proportionally to degree (degree distribution ~ k^-3). Edge weights are
/// uniform in [1, 2), so any two-edge detour already costs more than any
/// direct edge. Structure decisions use only integer Prng draws (no libm),
/// so the topology is bit-stable across platforms. Connected by
/// construction; unbounded doubling dimension as hubs grow.
Graph make_power_law(std::size_t n, std::size_t edges_per_node,
                     std::uint64_t seed);

/// Hyperbolic random disk (Krioukov et al.): n points on a disk of radius
/// R ≈ 2 ln(8n / (π·avg_degree)), radial density ~ sinh(alpha r), joined
/// when their hyperbolic distance is at most R, with that distance as the
/// edge weight. Degree distribution ~ k^-(2·alpha+1); alpha in (0.5, 1]
/// gives Internet-like exponents in (2, 3]. Components are stitched via
/// stitch_components under the same hyperbolic distance. O(n²) build.
Graph make_hyperbolic_disk(std::size_t n, double alpha, double avg_degree,
                           std::uint64_t seed);

/// Two-tier AS-like topology: a dense random core of `core` nodes (ring
/// plus ~half of all core pairs, weights in [1, 2)) and n - core stub nodes
/// attaching preferentially to earlier nodes with heavier access links
/// (weights in [2, 4)); ~1/4 of stubs are dual-homed. Connected by
/// construction; hub-and-spoke like measured AS graphs.
Graph make_as_topology(std::size_t n, std::size_t core, std::uint64_t seed);

}  // namespace compactroute

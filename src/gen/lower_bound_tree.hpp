#pragma once
//
// The lower-bound tree of Section 5.2 (Figure 3).
//
// Given ε ∈ (0, 8) and a target size n, builds the tree used in the proof of
// Theorem 1.3: a root u, and for i ∈ [p], j ∈ [q] (p = ⌈72/ε⌉ + 6,
// q = ⌈48/ε⌉ − 4) a path T_{i,j} on n^{(iq+j+1)/(pq)} − n^{(iq+j)/(pq)} nodes
// with edge weight 1/n, whose middle node hangs off the root by an edge of
// weight w_{i,j} = 2^i (q + j). Its doubling dimension is at most 6 − log ε
// (Lemma 5.8) and its normalized diameter is O(2^{1/ε} n).
//
// Path sizes are fractional for realistic n, so we round the cumulative node
// counts and guarantee at least one node per path; the reported structure
// records the exact sizes realized.
//
#include <cstddef>
#include <vector>

#include "graph/graph.hpp"

namespace compactroute {

struct LowerBoundTree {
  Graph graph;
  NodeId root = 0;
  double epsilon = 0;
  int p = 0;
  int q = 0;
  /// paths[i][j] = node ids of T_{i,j} in path order.
  std::vector<std::vector<std::vector<NodeId>>> paths;
  /// middle[i][j] = the node attached to the root.
  std::vector<std::vector<NodeId>> middle;
  /// Weight of every in-path edge (the paper's 1/n).
  Weight path_edge_weight = 0;
  /// w_{i,j} = 2^i (q + j).
  Weight root_edge_weight(int i, int j) const;
};

LowerBoundTree make_lower_bound_tree(double epsilon, std::size_t n);

}  // namespace compactroute

#include "gen/lower_bound_tree.hpp"

#include <cmath>

#include "core/check.hpp"

namespace compactroute {

Weight LowerBoundTree::root_edge_weight(int i, int j) const {
  return std::ldexp(1.0, i) * static_cast<Weight>(q + j);
}

LowerBoundTree make_lower_bound_tree(double epsilon, std::size_t n) {
  CR_CHECK_MSG(epsilon > 0 && epsilon < 8, "Theorem 1.3 requires ε ∈ (0, 8)");
  LowerBoundTree tree;
  tree.epsilon = epsilon;
  tree.p = static_cast<int>(std::ceil(72.0 / epsilon)) + 6;
  tree.q = static_cast<int>(std::ceil(48.0 / epsilon)) - 4;
  CR_CHECK(tree.q >= 1);
  const int c = tree.p * tree.q;
  CR_CHECK_MSG(n >= static_cast<std::size_t>(2 * c),
               "need n >= 2·p·q so every path T_{i,j} is non-empty");

  // Path k (k = iq + j) nominally spans cumulative counts
  // [n^{k/c}, n^{(k+1)/c}); we round the cumulative counts and enforce that
  // each path gets at least one node.
  const double nd = static_cast<double>(n);
  std::vector<std::size_t> cumulative(c + 1);
  cumulative[0] = 1;  // n^0
  for (int k = 1; k <= c; ++k) {
    const double exact = std::pow(nd, static_cast<double>(k) / c);
    std::size_t rounded = static_cast<std::size_t>(std::llround(exact));
    // Monotone and strictly increasing so |T_{i,j}| >= 1.
    rounded = std::max(rounded, cumulative[k - 1] + 1);
    cumulative[k] = rounded;
  }
  // cumulative[0] = 1 accounts for the root (the paper's |S_{p-1,q-1}| = n
  // includes u), so the final cumulative count is the full node budget.
  const std::size_t total = cumulative[c];
  const Weight path_edge = 1.0 / nd;  // the paper's 1/n edge weight
  tree.path_edge_weight = path_edge;

  Graph graph(total);
  const NodeId root = 0;
  NodeId next = 1;
  tree.paths.assign(tree.p, std::vector<std::vector<NodeId>>(tree.q));
  tree.middle.assign(tree.p, std::vector<NodeId>(tree.q, kInvalidNode));

  for (int i = 0; i < tree.p; ++i) {
    for (int j = 0; j < tree.q; ++j) {
      const int k = i * tree.q + j;
      const std::size_t size = cumulative[k + 1] - cumulative[k];
      std::vector<NodeId>& path = tree.paths[i][j];
      path.reserve(size);
      for (std::size_t s = 0; s < size; ++s) {
        path.push_back(next++);
        if (s > 0) graph.add_edge(path[s - 1], path[s], path_edge);
      }
      const NodeId mid = path[size / 2];
      tree.middle[i][j] = mid;
      graph.add_edge(root, mid, tree.root_edge_weight(i, j));
    }
  }
  CR_CHECK(next == graph.num_nodes());
  tree.graph = std::move(graph);
  tree.root = root;
  return tree;
}

}  // namespace compactroute

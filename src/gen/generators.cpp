#include "gen/generators.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <functional>
#include <numeric>
#include <vector>

#include "core/check.hpp"
#include "core/prng.hpp"

namespace compactroute {

namespace {

/// Largest connected component of `graph`, with nodes relabeled densely in
/// increasing original-id order.
Graph largest_component(const Graph& graph) {
  const std::size_t n = graph.num_nodes();
  std::vector<int> component(n, -1);
  int num_components = 0;
  for (NodeId start = 0; start < n; ++start) {
    if (component[start] >= 0) continue;
    std::vector<NodeId> stack = {start};
    component[start] = num_components;
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      for (const HalfEdge& half : graph.neighbors(u)) {
        if (component[half.to] < 0) {
          component[half.to] = num_components;
          stack.push_back(half.to);
        }
      }
    }
    ++num_components;
  }
  std::vector<std::size_t> sizes(num_components, 0);
  for (NodeId u = 0; u < n; ++u) ++sizes[component[u]];
  const int biggest = static_cast<int>(
      std::max_element(sizes.begin(), sizes.end()) - sizes.begin());

  std::vector<NodeId> relabel(n, kInvalidNode);
  NodeId next = 0;
  for (NodeId u = 0; u < n; ++u) {
    if (component[u] == biggest) relabel[u] = next++;
  }
  Graph out(next);
  for (NodeId u = 0; u < n; ++u) {
    if (component[u] != biggest) continue;
    for (const HalfEdge& half : graph.neighbors(u)) {
      if (u < half.to) out.add_edge(relabel[u], relabel[half.to], half.weight);
    }
  }
  return out;
}

}  // namespace

Graph make_grid(std::size_t width, std::size_t height) {
  CR_CHECK(width >= 1 && height >= 1 && width * height >= 2);
  Graph graph(width * height);
  const auto id = [width](std::size_t x, std::size_t y) {
    return static_cast<NodeId>(y * width + x);
  };
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      if (x + 1 < width) graph.add_edge(id(x, y), id(x + 1, y), 1);
      if (y + 1 < height) graph.add_edge(id(x, y), id(x, y + 1), 1);
    }
  }
  return graph;
}

Graph make_grid_with_holes(std::size_t width, std::size_t height,
                           std::size_t num_holes, std::size_t max_hole_side,
                           std::uint64_t seed) {
  CR_CHECK(max_hole_side >= 1);
  Prng prng(seed);
  std::vector<char> blocked(width * height, 0);
  for (std::size_t h = 0; h < num_holes; ++h) {
    const std::size_t hw = 1 + prng.next_below(max_hole_side);
    const std::size_t hh = 1 + prng.next_below(max_hole_side);
    const std::size_t x0 = prng.next_below(width);
    const std::size_t y0 = prng.next_below(height);
    for (std::size_t y = y0; y < std::min(height, y0 + hh); ++y) {
      for (std::size_t x = x0; x < std::min(width, x0 + hw); ++x) {
        blocked[y * width + x] = 1;
      }
    }
  }
  Graph full(width * height);
  const auto id = [width](std::size_t x, std::size_t y) {
    return static_cast<NodeId>(y * width + x);
  };
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      if (blocked[y * width + x]) continue;
      if (x + 1 < width && !blocked[y * width + x + 1]) {
        full.add_edge(id(x, y), id(x + 1, y), 1);
      }
      if (y + 1 < height && !blocked[(y + 1) * width + x]) {
        full.add_edge(id(x, y), id(x, y + 1), 1);
      }
    }
  }
  Graph out = largest_component(full);
  CR_CHECK_MSG(out.num_nodes() >= 2, "holes destroyed the grid; use fewer/smaller holes");
  return out;
}

Graph make_random_geometric(std::size_t n, int dim, std::size_t k,
                            std::uint64_t seed) {
  CR_CHECK(n >= 2 && dim >= 1 && dim <= 3 && k >= 1);
  Prng prng(seed);
  std::vector<std::array<double, 3>> points(n, {0, 0, 0});
  for (auto& p : points) {
    for (int d = 0; d < dim; ++d) p[d] = prng.next_double();
  }
  const auto euclid = [&](std::size_t a, std::size_t b) {
    double s = 0;
    for (int d = 0; d < dim; ++d) {
      const double diff = points[a][d] - points[b][d];
      s += diff * diff;
    }
    // Clamp so coincident points still get a positive edge weight.
    return std::max(std::sqrt(s), 1e-9);
  };

  Graph graph(n);
  std::vector<std::pair<double, NodeId>> dists(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) dists[v] = {euclid(u, v), v};
    std::sort(dists.begin(), dists.end());
    for (std::size_t i = 1; i <= std::min(k, n - 1); ++i) {
      graph.add_edge(u, dists[i].second, dists[i].first);
    }
  }

  // Stitch components via closest cross-component pairs.
  stitch_components(graph, [&](NodeId a, NodeId b) { return euclid(a, b); });
  return graph;
}

void stitch_components(Graph& graph,
                       const std::function<Weight(NodeId, NodeId)>& distance) {
  const std::size_t n = graph.num_nodes();
  while (!graph.is_connected()) {
    std::vector<int> component(n, -1);
    int num_components = 0;
    for (NodeId start = 0; start < n; ++start) {
      if (component[start] >= 0) continue;
      std::vector<NodeId> stack = {start};
      component[start] = num_components;
      while (!stack.empty()) {
        const NodeId u = stack.back();
        stack.pop_back();
        for (const HalfEdge& half : graph.neighbors(u)) {
          if (component[half.to] < 0) {
            component[half.to] = num_components;
            stack.push_back(half.to);
          }
        }
      }
      ++num_components;
    }
    // Closest cross-component pair; ties broken by the smallest (u, v) so
    // the stitched edge is a function of the point set, not of scan order.
    Weight best = kInfiniteWeight;
    NodeId bu = kInvalidNode, bv = kInvalidNode;
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = u + 1; v < n; ++v) {
        if (component[u] == component[v]) continue;
        const Weight d = distance(u, v);
        if (d < best || (d == best && (u < bu || (u == bu && v < bv)))) {
          best = d;
          bu = u;
          bv = v;
        }
      }
    }
    CR_CHECK_MSG(bu != kInvalidNode, "disconnected graph with no cross pair");
    graph.add_edge(bu, bv, std::max<Weight>(best, 1e-9));
  }
}

Graph make_path(std::size_t n, Weight edge_weight) {
  CR_CHECK(n >= 2);
  Graph graph(n);
  for (NodeId u = 0; u + 1 < n; ++u) graph.add_edge(u, u + 1, edge_weight);
  return graph;
}

Graph make_cycle(std::size_t n, Weight edge_weight) {
  CR_CHECK(n >= 3);
  Graph graph = make_path(n, edge_weight);
  graph.add_edge(static_cast<NodeId>(n - 1), 0, edge_weight);
  return graph;
}

Graph make_star(std::size_t leaves, Weight edge_weight) {
  CR_CHECK(leaves >= 1);
  Graph graph(leaves + 1);
  for (NodeId leaf = 1; leaf <= leaves; ++leaf) graph.add_edge(0, leaf, edge_weight);
  return graph;
}

Graph make_random_tree(std::size_t n, Weight max_weight, std::uint64_t seed) {
  CR_CHECK(n >= 2 && max_weight >= 1);
  Prng prng(seed);
  Graph graph(n);
  for (NodeId u = 1; u < n; ++u) {
    const NodeId parent = static_cast<NodeId>(prng.next_below(u));
    graph.add_edge(u, parent, prng.next_double(1.0, max_weight));
  }
  return graph;
}

Graph make_balanced_tree(std::size_t branching, std::size_t depth) {
  CR_CHECK(branching >= 2 && depth >= 1);
  std::size_t n = 1, level_size = 1;
  for (std::size_t d = 0; d < depth; ++d) {
    level_size *= branching;
    n += level_size;
  }
  Graph graph(n);
  for (NodeId u = 1; u < n; ++u) {
    graph.add_edge(u, static_cast<NodeId>((u - 1) / branching), 1);
  }
  return graph;
}

Graph make_exponential_spider(std::size_t arms, std::size_t nodes_per_arm,
                              Weight growth) {
  CR_CHECK(arms >= 1 && nodes_per_arm >= 1 && growth > 1);
  Graph graph(1 + arms * nodes_per_arm);
  NodeId next = 1;
  for (std::size_t arm = 0; arm < arms; ++arm) {
    const Weight w = std::pow(growth, static_cast<double>(arm));
    NodeId prev = 0;
    for (std::size_t i = 0; i < nodes_per_arm; ++i) {
      graph.add_edge(prev, next, w);
      prev = next++;
    }
  }
  return graph;
}

Graph make_torus(std::size_t width, std::size_t height) {
  CR_CHECK(width >= 3 && height >= 3);
  Graph graph(width * height);
  const auto id = [width](std::size_t x, std::size_t y) {
    return static_cast<NodeId>(y * width + x);
  };
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      graph.add_edge(id(x, y), id((x + 1) % width, y), 1);
      graph.add_edge(id(x, y), id(x, (y + 1) % height), 1);
    }
  }
  return graph;
}

Graph make_ring_of_cliques(std::size_t num_cliques, std::size_t clique_size,
                           Weight bridge) {
  CR_CHECK(num_cliques >= 3 && clique_size >= 2 && bridge >= 1);
  Graph graph(num_cliques * clique_size);
  for (std::size_t c = 0; c < num_cliques; ++c) {
    const NodeId base = static_cast<NodeId>(c * clique_size);
    for (std::size_t a = 0; a < clique_size; ++a) {
      for (std::size_t b = a + 1; b < clique_size; ++b) {
        graph.add_edge(base + static_cast<NodeId>(a), base + static_cast<NodeId>(b),
                       1);
      }
    }
    const NodeId next_base =
        static_cast<NodeId>(((c + 1) % num_cliques) * clique_size);
    graph.add_edge(base, next_base, bridge);
  }
  return graph;
}

Graph make_cluster_hierarchy(std::size_t levels, std::size_t fanout, Weight spread,
                             std::uint64_t seed) {
  CR_CHECK(levels >= 1 && fanout >= 2 && spread > 1);
  Prng prng(seed);
  std::size_t n = 1;
  for (std::size_t l = 0; l < levels; ++l) n *= fanout;
  Graph graph(n);

  // Recursive structure over the contiguous id range [lo, lo + size):
  // split into `fanout` blocks, link each block's representative (its first
  // id) to the first block's representative with weight ~ spread^level,
  // jittered to avoid massive distance ties.
  const std::function<void(std::size_t, std::size_t, std::size_t)> build =
      [&](std::size_t lo, std::size_t size, std::size_t level) {
        if (size <= 1) return;
        const std::size_t block = size / fanout;
        const Weight base = std::pow(spread, static_cast<double>(level));
        for (std::size_t b = 1; b < fanout; ++b) {
          const Weight w = base * (1.0 + 0.1 * prng.next_double());
          graph.add_edge(static_cast<NodeId>(lo),
                         static_cast<NodeId>(lo + b * block), w);
        }
        for (std::size_t b = 0; b < fanout; ++b) build(lo + b * block, block, level - 1);
      };
  build(0, n, levels);
  return graph;
}

namespace {

/// Samples `want` distinct attachment targets for a newly arriving node from
/// `endpoints` (one entry per half-edge, so sampling is degree-proportional),
/// rejecting duplicates. Shared by the BA and AS-topology generators.
std::vector<NodeId> preferential_targets(const std::vector<NodeId>& endpoints,
                                         std::size_t want, Prng& prng) {
  std::vector<NodeId> targets;
  targets.reserve(want);
  while (targets.size() < want) {
    const NodeId pick = endpoints[prng.next_below(endpoints.size())];
    if (std::find(targets.begin(), targets.end(), pick) == targets.end()) {
      targets.push_back(pick);
    }
  }
  return targets;
}

}  // namespace

Graph make_power_law(std::size_t n, std::size_t edges_per_node,
                     std::uint64_t seed) {
  CR_CHECK(n >= 3 && edges_per_node >= 1 && edges_per_node < n);
  Prng prng(seed);
  Graph graph(n);
  // Half-edge endpoint list: node u appears deg(u) times, so a uniform draw
  // is a degree-proportional draw — the classic BA urn, no floats involved.
  std::vector<NodeId> endpoints;
  endpoints.reserve(2 * n * edges_per_node);

  // Seed core: a clique on the first edges_per_node + 1 nodes, so every
  // early node has positive degree before preferential attachment starts.
  const std::size_t core = std::min(n, edges_per_node + 1);
  for (NodeId u = 0; u < core; ++u) {
    for (NodeId v = u + 1; v < core; ++v) {
      graph.add_edge(u, v, 1.0 + prng.next_double());
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  for (NodeId u = static_cast<NodeId>(core); u < n; ++u) {
    const std::vector<NodeId> targets =
        preferential_targets(endpoints, edges_per_node, prng);
    for (const NodeId t : targets) {
      graph.add_edge(u, t, 1.0 + prng.next_double());
      endpoints.push_back(u);
      endpoints.push_back(t);
    }
  }
  return graph;
}

Graph make_hyperbolic_disk(std::size_t n, double alpha, double avg_degree,
                           std::uint64_t seed) {
  CR_CHECK(n >= 3 && alpha > 0 && avg_degree > 0 &&
           avg_degree < static_cast<double>(n));
  Prng prng(seed);
  // Disk radius tuned so the expected degree lands near avg_degree for
  // alpha ≈ 1 (Krioukov et al. 2010, eq. 22 heuristic); clamp away from 0
  // for tiny n where the formula goes negative.
  const double R =
      std::max(1.0, 2.0 * std::log(8.0 * static_cast<double>(n) /
                                   (3.14159265358979323846 * avg_degree)));
  std::vector<double> r(n), theta(n);
  const double cosh_alpha_r = std::cosh(alpha * R);
  for (std::size_t i = 0; i < n; ++i) {
    // Inverse-CDF radial sample: density ~ sinh(alpha r) on [0, R].
    const double u = prng.next_double();
    r[i] = std::acosh(1.0 + (cosh_alpha_r - 1.0) * u) / alpha;
    theta[i] = 2.0 * 3.14159265358979323846 * prng.next_double();
  }
  // Hyperbolic distance via the law of cosines; returning cosh(d) lets the
  // connect test compare against cosh(R) without an acosh per pair.
  const auto cosh_dist = [&](std::size_t a, std::size_t b) {
    const double dt = std::cos(theta[a] - theta[b]);
    const double c = std::cosh(r[a]) * std::cosh(r[b]) -
                     std::sinh(r[a]) * std::sinh(r[b]) * dt;
    return std::max(c, 1.0);  // numeric noise can dip below cosh(0) = 1
  };
  const auto hyp = [&](NodeId a, NodeId b) {
    return std::max(std::acosh(cosh_dist(a, b)), 1e-9);
  };

  Graph graph(n);
  const double cosh_R = std::cosh(R);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (cosh_dist(u, v) <= cosh_R) graph.add_edge(u, v, hyp(u, v));
    }
  }
  stitch_components(graph, hyp);
  return graph;
}

Graph make_as_topology(std::size_t n, std::size_t core, std::uint64_t seed) {
  CR_CHECK(n >= 4 && core >= 3 && core < n);
  Prng prng(seed);
  Graph graph(n);
  std::vector<NodeId> endpoints;

  // Tier 1: dense core. A ring guarantees core connectivity; on top, every
  // core pair gets a peering link with probability 1/2. Core links are the
  // cheap, fat backbone: weights in [1, 2).
  for (NodeId u = 0; u < core; ++u) {
    const NodeId next = static_cast<NodeId>((u + 1) % core);
    graph.add_edge(u, next, 1.0 + prng.next_double());
    endpoints.push_back(u);
    endpoints.push_back(next);
  }
  for (NodeId u = 0; u < core; ++u) {
    for (NodeId v = u + 2; v < core; ++v) {
      if ((u == 0 && v + 1 == core) || prng.next_below(2) != 0) continue;
      graph.add_edge(u, v, 1.0 + prng.next_double());
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }

  // Tier 2: stubs attach preferentially (degree-proportional, so early core
  // hubs stay hubs) over heavier access links, weights in [2, 4); roughly a
  // quarter of stubs dual-home for redundancy.
  for (NodeId u = static_cast<NodeId>(core); u < n; ++u) {
    const std::size_t links = 1 + (prng.next_below(4) == 0 ? 1 : 0);
    const std::vector<NodeId> targets =
        preferential_targets(endpoints, links, prng);
    for (const NodeId t : targets) {
      graph.add_edge(u, t, 2.0 + 2.0 * prng.next_double());
      endpoints.push_back(u);
      endpoints.push_back(t);
    }
  }
  return graph;
}

}  // namespace compactroute

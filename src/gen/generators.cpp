#include "gen/generators.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <functional>
#include <numeric>
#include <vector>

#include "core/check.hpp"
#include "core/prng.hpp"

namespace compactroute {

namespace {

/// Largest connected component of `graph`, with nodes relabeled densely in
/// increasing original-id order.
Graph largest_component(const Graph& graph) {
  const std::size_t n = graph.num_nodes();
  std::vector<int> component(n, -1);
  int num_components = 0;
  for (NodeId start = 0; start < n; ++start) {
    if (component[start] >= 0) continue;
    std::vector<NodeId> stack = {start};
    component[start] = num_components;
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      for (const HalfEdge& half : graph.neighbors(u)) {
        if (component[half.to] < 0) {
          component[half.to] = num_components;
          stack.push_back(half.to);
        }
      }
    }
    ++num_components;
  }
  std::vector<std::size_t> sizes(num_components, 0);
  for (NodeId u = 0; u < n; ++u) ++sizes[component[u]];
  const int biggest = static_cast<int>(
      std::max_element(sizes.begin(), sizes.end()) - sizes.begin());

  std::vector<NodeId> relabel(n, kInvalidNode);
  NodeId next = 0;
  for (NodeId u = 0; u < n; ++u) {
    if (component[u] == biggest) relabel[u] = next++;
  }
  Graph out(next);
  for (NodeId u = 0; u < n; ++u) {
    if (component[u] != biggest) continue;
    for (const HalfEdge& half : graph.neighbors(u)) {
      if (u < half.to) out.add_edge(relabel[u], relabel[half.to], half.weight);
    }
  }
  return out;
}

}  // namespace

Graph make_grid(std::size_t width, std::size_t height) {
  CR_CHECK(width >= 1 && height >= 1 && width * height >= 2);
  Graph graph(width * height);
  const auto id = [width](std::size_t x, std::size_t y) {
    return static_cast<NodeId>(y * width + x);
  };
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      if (x + 1 < width) graph.add_edge(id(x, y), id(x + 1, y), 1);
      if (y + 1 < height) graph.add_edge(id(x, y), id(x, y + 1), 1);
    }
  }
  return graph;
}

Graph make_grid_with_holes(std::size_t width, std::size_t height,
                           std::size_t num_holes, std::size_t max_hole_side,
                           std::uint64_t seed) {
  CR_CHECK(max_hole_side >= 1);
  Prng prng(seed);
  std::vector<char> blocked(width * height, 0);
  for (std::size_t h = 0; h < num_holes; ++h) {
    const std::size_t hw = 1 + prng.next_below(max_hole_side);
    const std::size_t hh = 1 + prng.next_below(max_hole_side);
    const std::size_t x0 = prng.next_below(width);
    const std::size_t y0 = prng.next_below(height);
    for (std::size_t y = y0; y < std::min(height, y0 + hh); ++y) {
      for (std::size_t x = x0; x < std::min(width, x0 + hw); ++x) {
        blocked[y * width + x] = 1;
      }
    }
  }
  Graph full(width * height);
  const auto id = [width](std::size_t x, std::size_t y) {
    return static_cast<NodeId>(y * width + x);
  };
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      if (blocked[y * width + x]) continue;
      if (x + 1 < width && !blocked[y * width + x + 1]) {
        full.add_edge(id(x, y), id(x + 1, y), 1);
      }
      if (y + 1 < height && !blocked[(y + 1) * width + x]) {
        full.add_edge(id(x, y), id(x, y + 1), 1);
      }
    }
  }
  Graph out = largest_component(full);
  CR_CHECK_MSG(out.num_nodes() >= 2, "holes destroyed the grid; use fewer/smaller holes");
  return out;
}

Graph make_random_geometric(std::size_t n, int dim, std::size_t k,
                            std::uint64_t seed) {
  CR_CHECK(n >= 2 && dim >= 1 && dim <= 3 && k >= 1);
  Prng prng(seed);
  std::vector<std::array<double, 3>> points(n, {0, 0, 0});
  for (auto& p : points) {
    for (int d = 0; d < dim; ++d) p[d] = prng.next_double();
  }
  const auto euclid = [&](std::size_t a, std::size_t b) {
    double s = 0;
    for (int d = 0; d < dim; ++d) {
      const double diff = points[a][d] - points[b][d];
      s += diff * diff;
    }
    // Clamp so coincident points still get a positive edge weight.
    return std::max(std::sqrt(s), 1e-9);
  };

  Graph graph(n);
  std::vector<std::pair<double, NodeId>> dists(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) dists[v] = {euclid(u, v), v};
    std::sort(dists.begin(), dists.end());
    for (std::size_t i = 1; i <= std::min(k, n - 1); ++i) {
      graph.add_edge(u, dists[i].second, dists[i].first);
    }
  }

  // Stitch components via closest cross-component pairs.
  while (!graph.is_connected()) {
    std::vector<int> component(n, -1);
    int num_components = 0;
    for (NodeId start = 0; start < n; ++start) {
      if (component[start] >= 0) continue;
      std::vector<NodeId> stack = {start};
      component[start] = num_components;
      while (!stack.empty()) {
        const NodeId u = stack.back();
        stack.pop_back();
        for (const HalfEdge& half : graph.neighbors(u)) {
          if (component[half.to] < 0) {
            component[half.to] = num_components;
            stack.push_back(half.to);
          }
        }
      }
      ++num_components;
    }
    double best = kInfiniteWeight;
    NodeId bu = 0, bv = 0;
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = u + 1; v < n; ++v) {
        if (component[u] != component[v] && euclid(u, v) < best) {
          best = euclid(u, v);
          bu = u;
          bv = v;
        }
      }
    }
    graph.add_edge(bu, bv, best);
  }
  return graph;
}

Graph make_path(std::size_t n, Weight edge_weight) {
  CR_CHECK(n >= 2);
  Graph graph(n);
  for (NodeId u = 0; u + 1 < n; ++u) graph.add_edge(u, u + 1, edge_weight);
  return graph;
}

Graph make_cycle(std::size_t n, Weight edge_weight) {
  CR_CHECK(n >= 3);
  Graph graph = make_path(n, edge_weight);
  graph.add_edge(static_cast<NodeId>(n - 1), 0, edge_weight);
  return graph;
}

Graph make_star(std::size_t leaves, Weight edge_weight) {
  CR_CHECK(leaves >= 1);
  Graph graph(leaves + 1);
  for (NodeId leaf = 1; leaf <= leaves; ++leaf) graph.add_edge(0, leaf, edge_weight);
  return graph;
}

Graph make_random_tree(std::size_t n, Weight max_weight, std::uint64_t seed) {
  CR_CHECK(n >= 2 && max_weight >= 1);
  Prng prng(seed);
  Graph graph(n);
  for (NodeId u = 1; u < n; ++u) {
    const NodeId parent = static_cast<NodeId>(prng.next_below(u));
    graph.add_edge(u, parent, prng.next_double(1.0, max_weight));
  }
  return graph;
}

Graph make_balanced_tree(std::size_t branching, std::size_t depth) {
  CR_CHECK(branching >= 2 && depth >= 1);
  std::size_t n = 1, level_size = 1;
  for (std::size_t d = 0; d < depth; ++d) {
    level_size *= branching;
    n += level_size;
  }
  Graph graph(n);
  for (NodeId u = 1; u < n; ++u) {
    graph.add_edge(u, static_cast<NodeId>((u - 1) / branching), 1);
  }
  return graph;
}

Graph make_exponential_spider(std::size_t arms, std::size_t nodes_per_arm,
                              Weight growth) {
  CR_CHECK(arms >= 1 && nodes_per_arm >= 1 && growth > 1);
  Graph graph(1 + arms * nodes_per_arm);
  NodeId next = 1;
  for (std::size_t arm = 0; arm < arms; ++arm) {
    const Weight w = std::pow(growth, static_cast<double>(arm));
    NodeId prev = 0;
    for (std::size_t i = 0; i < nodes_per_arm; ++i) {
      graph.add_edge(prev, next, w);
      prev = next++;
    }
  }
  return graph;
}

Graph make_torus(std::size_t width, std::size_t height) {
  CR_CHECK(width >= 3 && height >= 3);
  Graph graph(width * height);
  const auto id = [width](std::size_t x, std::size_t y) {
    return static_cast<NodeId>(y * width + x);
  };
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      graph.add_edge(id(x, y), id((x + 1) % width, y), 1);
      graph.add_edge(id(x, y), id(x, (y + 1) % height), 1);
    }
  }
  return graph;
}

Graph make_ring_of_cliques(std::size_t num_cliques, std::size_t clique_size,
                           Weight bridge) {
  CR_CHECK(num_cliques >= 3 && clique_size >= 2 && bridge >= 1);
  Graph graph(num_cliques * clique_size);
  for (std::size_t c = 0; c < num_cliques; ++c) {
    const NodeId base = static_cast<NodeId>(c * clique_size);
    for (std::size_t a = 0; a < clique_size; ++a) {
      for (std::size_t b = a + 1; b < clique_size; ++b) {
        graph.add_edge(base + static_cast<NodeId>(a), base + static_cast<NodeId>(b),
                       1);
      }
    }
    const NodeId next_base =
        static_cast<NodeId>(((c + 1) % num_cliques) * clique_size);
    graph.add_edge(base, next_base, bridge);
  }
  return graph;
}

Graph make_cluster_hierarchy(std::size_t levels, std::size_t fanout, Weight spread,
                             std::uint64_t seed) {
  CR_CHECK(levels >= 1 && fanout >= 2 && spread > 1);
  Prng prng(seed);
  std::size_t n = 1;
  for (std::size_t l = 0; l < levels; ++l) n *= fanout;
  Graph graph(n);

  // Recursive structure over the contiguous id range [lo, lo + size):
  // split into `fanout` blocks, link each block's representative (its first
  // id) to the first block's representative with weight ~ spread^level,
  // jittered to avoid massive distance ties.
  const std::function<void(std::size_t, std::size_t, std::size_t)> build =
      [&](std::size_t lo, std::size_t size, std::size_t level) {
        if (size <= 1) return;
        const std::size_t block = size / fanout;
        const Weight base = std::pow(spread, static_cast<double>(level));
        for (std::size_t b = 1; b < fanout; ++b) {
          const Weight w = base * (1.0 + 0.1 * prng.next_double());
          graph.add_edge(static_cast<NodeId>(lo),
                         static_cast<NodeId>(lo + b * block), w);
        }
        for (std::size_t b = 0; b < fanout; ++b) build(lo + b * block, block, level - 1);
      };
  build(0, n, levels);
  return graph;
}

}  // namespace compactroute
